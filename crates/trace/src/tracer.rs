//! The [`Tracer`] trait and the two built-in sinks: [`NullTracer`]
//! (zero-cost disabled tracing) and [`CountingTracer`] (histogram-grade
//! counters).

use crate::event::{FaultEvent, MemEvent, RfuEvent, StallCause};

/// A sink for cycle-accurate simulation events.
///
/// Every hook has an empty default body, so implementors only override what
/// they observe. The simulator is *generic* over the tracer: with
/// [`NullTracer`] every hook monomorphizes to nothing and the issue loop
/// compiles exactly as it did before tracing existed — the zero-cost-when-
/// disabled contract guarded by the `sim_throughput` bench and the
/// allocation-free test.
pub trait Tracer {
    /// A bundle issued at `cycle` from bundle index `pc` with `ops`
    /// operations.
    #[inline]
    fn bundle(&mut self, cycle: u64, pc: usize, ops: usize) {
        let _ = (cycle, pc, ops);
    }

    /// The machine lost `cycles` at `cycle` while issuing bundle `pc`, for
    /// the given `cause`.
    #[inline]
    fn stall(&mut self, cycle: u64, pc: usize, cause: StallCause, cycles: u64) {
        let _ = (cycle, pc, cause, cycles);
    }

    /// A memory-hierarchy event at `cycle`.
    #[inline]
    fn mem(&mut self, cycle: u64, event: MemEvent) {
        let _ = (cycle, event);
    }

    /// An RFU event at `cycle`.
    #[inline]
    fn rfu(&mut self, cycle: u64, event: RfuEvent) {
        let _ = (cycle, event);
    }

    /// An injected fault fired at `cycle`. Zero-fault runs never call
    /// this hook.
    #[inline]
    fn fault(&mut self, cycle: u64, event: FaultEvent) {
        let _ = (cycle, event);
    }

    /// Whether every hook of this tracer is a no-op, so a simulator may
    /// take an event-free fast path without losing observations. Only
    /// [`NullTracer`] answers `true`; implementors whose hooks all discard
    /// their events may override this, and must never return `true` while
    /// any hook observes anything.
    #[inline]
    #[must_use]
    fn is_null(&self) -> bool {
        false
    }
}

/// The disabled tracer: every hook is a no-op that the optimizer erases.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn is_null(&self) -> bool {
        true
    }
}

/// Fans every event out to two sinks, so a single deterministic run can
/// feed e.g. a [`crate::ChromeTracer`] and a [`CountingTracer`] at once.
#[derive(Debug)]
pub struct TeeTracer<'a, A: Tracer + ?Sized, B: Tracer + ?Sized> {
    /// The first sink; events reach it before `b`.
    pub a: &'a mut A,
    /// The second sink.
    pub b: &'a mut B,
}

impl<'a, A: Tracer + ?Sized, B: Tracer + ?Sized> TeeTracer<'a, A, B> {
    /// Wraps the two sinks.
    pub fn new(a: &'a mut A, b: &'a mut B) -> Self {
        TeeTracer { a, b }
    }
}

impl<A: Tracer + ?Sized, B: Tracer + ?Sized> Tracer for TeeTracer<'_, A, B> {
    #[inline]
    fn bundle(&mut self, cycle: u64, pc: usize, ops: usize) {
        self.a.bundle(cycle, pc, ops);
        self.b.bundle(cycle, pc, ops);
    }

    #[inline]
    fn stall(&mut self, cycle: u64, pc: usize, cause: StallCause, cycles: u64) {
        self.a.stall(cycle, pc, cause, cycles);
        self.b.stall(cycle, pc, cause, cycles);
    }

    #[inline]
    fn mem(&mut self, cycle: u64, event: MemEvent) {
        self.a.mem(cycle, event);
        self.b.mem(cycle, event);
    }

    #[inline]
    fn rfu(&mut self, cycle: u64, event: RfuEvent) {
        self.a.rfu(cycle, event);
        self.b.rfu(cycle, event);
    }

    #[inline]
    fn fault(&mut self, cycle: u64, event: FaultEvent) {
        self.a.fault(cycle, event);
        self.b.fault(cycle, event);
    }
}

/// Per-bundle-index counters accumulated by [`CountingTracer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcCounters {
    /// Bundles issued from this program counter.
    pub bundles: u64,
    /// Operations issued from this program counter.
    pub ops: u64,
    /// Total stall cycles attributed to this program counter.
    pub stall_cycles: u64,
}

/// A tracer that extends the end-of-run counters with per-PC and
/// per-stall-site histograms — the "why did this table cell move" view.
///
/// Totals are defined to bit-match the legacy counters: `bundles`/`ops`
/// equal `SimStats::{bundles, ops}`, and each entry of `stall_cycles_by_cause`
/// equals the corresponding `SimStats`/`MemStats` stall account (see the
/// parity test in `rvliw-core`).
#[derive(Debug, Clone, Default)]
pub struct CountingTracer {
    /// Bundles issued.
    pub bundles: u64,
    /// Operations issued.
    pub ops: u64,
    /// Stall cycles by [`StallCause::index`].
    pub stall_cycles_by_cause: [u64; StallCause::ALL.len()],
    /// Stall events by [`StallCause::index`].
    pub stall_events_by_cause: [u64; StallCause::ALL.len()],
    /// Per-PC issue/stall histogram, indexed by bundle index.
    pub per_pc: Vec<PcCounters>,
    /// Per-stall-site histogram: `per_pc_stalls[pc][cause.index()]` is the
    /// stall cycles bundle `pc` paid to that cause.
    pub per_pc_stalls: Vec<[u64; StallCause::ALL.len()]>,
    /// Data-cache hits observed.
    pub d_hits: u64,
    /// Data-cache demand misses observed.
    pub d_misses: u64,
    /// Demand accesses covered late by an in-flight prefetch.
    pub d_late_covered: u64,
    /// Machine stall cycles charged by the data side (demand misses, late
    /// coverage, and RFU line-buffer waits — the paper's "cache stalls").
    pub d_stall_cycles: u64,
    /// Instruction-cache misses observed.
    pub i_misses: u64,
    /// Dirty-line writebacks observed.
    pub writebacks: u64,
    /// Prefetches accepted.
    pub pf_issued: u64,
    /// Prefetches dropped (buffer full).
    pub pf_dropped: u64,
    /// Prefetches that were redundant.
    pub pf_redundant: u64,
    /// `RFUINIT`s observed.
    pub rfu_inits: u64,
    /// `RFUSEND`s observed.
    pub rfu_sends: u64,
    /// Short custom-instruction executions observed.
    pub rfu_short_execs: u64,
    /// Kernel-loop executions observed.
    pub rfu_loops: u64,
    /// Kernel-loop pipeline-stage advances (rows) observed.
    pub rfu_loop_rows: u64,
    /// Static busy cycles of all kernel loops.
    pub rfu_loop_busy_cycles: u64,
    /// Stall cycles inflicted by kernel loops.
    pub rfu_loop_stall_cycles: u64,
    /// Macroblock prefetch instructions observed.
    pub rfu_mb_prefetches: u64,
    /// Line Buffer A row gathers completed.
    pub lba_rows_done: u64,
    /// Line Buffer A row waits.
    pub lba_waits: u64,
    /// Cycles spent waiting on Line Buffer A rows.
    pub lba_wait_cycles: u64,
    /// Line Buffer B hits.
    pub lbb_hits: u64,
    /// Line Buffer B late (in-flight) reads.
    pub lbb_late: u64,
    /// Line Buffer B misses.
    pub lbb_misses: u64,
    /// Injected faults observed, in total (zero on a healthy run).
    pub faults_injected: u64,
    /// Injected extra-latency faults observed.
    pub fault_mem_latency: u64,
    /// Extra stall cycles injected by latency faults.
    pub fault_mem_latency_cycles: u64,
    /// Injected spurious cache flushes observed.
    pub fault_cache_flushes: u64,
    /// Injected line-buffer row delays observed.
    pub fault_lb_delays: u64,
    /// Injected stuck line-buffer rows observed.
    pub fault_lb_stuck: u64,
    /// Injected pixel bit flips observed.
    pub fault_bit_flips: u64,
}

impl CountingTracer {
    /// A fresh, all-zero tracer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the per-PC histograms for a program of `len` bundles so
    /// the steady-state hot loop never reallocates.
    #[must_use]
    pub fn with_program_len(len: usize) -> Self {
        CountingTracer {
            per_pc: vec![PcCounters::default(); len],
            per_pc_stalls: vec![[0; StallCause::ALL.len()]; len],
            ..CountingTracer::default()
        }
    }

    fn grow_to(&mut self, pc: usize) {
        if pc >= self.per_pc.len() {
            self.per_pc.resize(pc + 1, PcCounters::default());
            self.per_pc_stalls
                .resize(pc + 1, [0; StallCause::ALL.len()]);
        }
    }

    /// Total stall cycles attributed to `cause`.
    #[must_use]
    pub fn stall_cycles(&self, cause: StallCause) -> u64 {
        self.stall_cycles_by_cause[cause.index()]
    }

    /// Total stall cycles across every cause.
    #[must_use]
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles_by_cause.iter().sum()
    }

    /// The `n` hottest program counters by attributed stall cycles, as
    /// `(pc, counters)` sorted hottest-first.
    #[must_use]
    pub fn hottest_stall_sites(&self, n: usize) -> Vec<(usize, PcCounters)> {
        let mut v: Vec<(usize, PcCounters)> = self
            .per_pc
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, c)| c.stall_cycles > 0)
            .collect();
        v.sort_by(|a, b| b.1.stall_cycles.cmp(&a.1.stall_cycles).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Renders the counters as a flat metrics JSON object (stable key
    /// order), including the per-cause stall histogram and the top stall
    /// sites.
    #[must_use]
    pub fn to_metrics_json(&self) -> String {
        let mut s = String::from("{\n");
        let field = |s: &mut String, k: &str, v: u64| {
            s.push_str(&format!("  \"{k}\": {v},\n"));
        };
        field(&mut s, "bundles", self.bundles);
        field(&mut s, "ops", self.ops);
        field(&mut s, "d_hits", self.d_hits);
        field(&mut s, "d_misses", self.d_misses);
        field(&mut s, "d_late_covered", self.d_late_covered);
        field(&mut s, "d_stall_cycles", self.d_stall_cycles);
        field(&mut s, "i_misses", self.i_misses);
        field(&mut s, "writebacks", self.writebacks);
        field(&mut s, "pf_issued", self.pf_issued);
        field(&mut s, "pf_dropped", self.pf_dropped);
        field(&mut s, "pf_redundant", self.pf_redundant);
        field(&mut s, "rfu_inits", self.rfu_inits);
        field(&mut s, "rfu_sends", self.rfu_sends);
        field(&mut s, "rfu_short_execs", self.rfu_short_execs);
        field(&mut s, "rfu_loops", self.rfu_loops);
        field(&mut s, "rfu_loop_rows", self.rfu_loop_rows);
        field(&mut s, "rfu_loop_busy_cycles", self.rfu_loop_busy_cycles);
        field(&mut s, "rfu_loop_stall_cycles", self.rfu_loop_stall_cycles);
        field(&mut s, "rfu_mb_prefetches", self.rfu_mb_prefetches);
        field(&mut s, "lba_rows_done", self.lba_rows_done);
        field(&mut s, "lba_waits", self.lba_waits);
        field(&mut s, "lba_wait_cycles", self.lba_wait_cycles);
        field(&mut s, "lbb_hits", self.lbb_hits);
        field(&mut s, "lbb_late", self.lbb_late);
        field(&mut s, "lbb_misses", self.lbb_misses);
        field(&mut s, "faults_injected", self.faults_injected);
        field(&mut s, "fault_mem_latency", self.fault_mem_latency);
        field(
            &mut s,
            "fault_mem_latency_cycles",
            self.fault_mem_latency_cycles,
        );
        field(&mut s, "fault_cache_flushes", self.fault_cache_flushes);
        field(&mut s, "fault_lb_delays", self.fault_lb_delays);
        field(&mut s, "fault_lb_stuck", self.fault_lb_stuck);
        field(&mut s, "fault_bit_flips", self.fault_bit_flips);
        s.push_str("  \"stalls\": {\n");
        for (i, cause) in StallCause::ALL.into_iter().enumerate() {
            let sep = if i + 1 == StallCause::ALL.len() {
                ""
            } else {
                ","
            };
            s.push_str(&format!(
                "    \"{}\": {{\"cycles\": {}, \"events\": {}}}{sep}\n",
                cause.label(),
                self.stall_cycles_by_cause[cause.index()],
                self.stall_events_by_cause[cause.index()],
            ));
        }
        s.push_str("  },\n  \"hot_stall_sites\": [\n");
        let hot = self.hottest_stall_sites(10);
        for (i, (pc, c)) in hot.iter().enumerate() {
            let sep = if i + 1 == hot.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"pc\": {pc}, \"bundles\": {}, \"ops\": {}, \"stall_cycles\": {}}}{sep}\n",
                c.bundles, c.ops, c.stall_cycles
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl Tracer for CountingTracer {
    #[inline]
    fn bundle(&mut self, _cycle: u64, pc: usize, ops: usize) {
        self.bundles += 1;
        self.ops += ops as u64;
        self.grow_to(pc);
        let c = &mut self.per_pc[pc];
        c.bundles += 1;
        c.ops += ops as u64;
    }

    #[inline]
    fn stall(&mut self, _cycle: u64, pc: usize, cause: StallCause, cycles: u64) {
        self.stall_cycles_by_cause[cause.index()] += cycles;
        self.stall_events_by_cause[cause.index()] += 1;
        self.grow_to(pc);
        self.per_pc[pc].stall_cycles += cycles;
        self.per_pc_stalls[pc][cause.index()] += cycles;
    }

    #[inline]
    fn mem(&mut self, _cycle: u64, event: MemEvent) {
        match event {
            MemEvent::DHit { .. } => self.d_hits += 1,
            MemEvent::DMiss { stall, .. } => {
                self.d_misses += 1;
                self.d_stall_cycles += stall;
            }
            MemEvent::DLateCovered { stall, .. } => {
                self.d_late_covered += 1;
                self.d_stall_cycles += stall;
            }
            MemEvent::IMiss { .. } => self.i_misses += 1,
            MemEvent::PrefetchIssued { .. } => self.pf_issued += 1,
            MemEvent::PrefetchDropped { .. } => self.pf_dropped += 1,
            MemEvent::PrefetchRedundant { .. } => self.pf_redundant += 1,
            MemEvent::Writeback => self.writebacks += 1,
        }
    }

    #[inline]
    fn rfu(&mut self, _cycle: u64, event: RfuEvent) {
        match event {
            RfuEvent::Init { .. } => self.rfu_inits += 1,
            RfuEvent::Send { .. } => self.rfu_sends += 1,
            RfuEvent::ShortExec { .. } => self.rfu_short_execs += 1,
            RfuEvent::LoopRow { .. } => self.rfu_loop_rows += 1,
            RfuEvent::LoopDone { busy, stall, .. } => {
                self.rfu_loops += 1;
                self.rfu_loop_busy_cycles += busy;
                self.rfu_loop_stall_cycles += stall;
            }
            RfuEvent::MbPrefetch { .. } => self.rfu_mb_prefetches += 1,
            RfuEvent::LbaRowDone { .. } => self.lba_rows_done += 1,
            RfuEvent::LbaWait { wait, .. } => {
                self.lba_waits += 1;
                self.lba_wait_cycles += wait;
                self.d_stall_cycles += wait;
            }
            RfuEvent::LbbHit => self.lbb_hits += 1,
            RfuEvent::LbbLate { wait } => {
                self.lbb_late += 1;
                self.d_stall_cycles += wait;
            }
            RfuEvent::LbbMiss => self.lbb_misses += 1,
        }
    }

    #[inline]
    fn fault(&mut self, _cycle: u64, event: FaultEvent) {
        self.faults_injected += 1;
        match event {
            FaultEvent::MemLatency { extra, .. } => {
                self.fault_mem_latency += 1;
                self.fault_mem_latency_cycles += extra;
            }
            FaultEvent::CacheFlush => self.fault_cache_flushes += 1,
            FaultEvent::LbRowDelay { .. } => self.fault_lb_delays += 1,
            FaultEvent::LbRowStuck { .. } => self.fault_lb_stuck += 1,
            FaultEvent::BitFlip { .. } => self.fault_bit_flips += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tracer_accumulates_and_ranks() {
        let mut t = CountingTracer::new();
        t.bundle(0, 3, 4);
        t.bundle(1, 3, 2);
        t.stall(2, 3, StallCause::Interlock, 5);
        t.stall(3, 7, StallCause::DCache, 50);
        t.mem(
            3,
            MemEvent::DMiss {
                addr: 0x100,
                stall: 50,
            },
        );
        assert_eq!(t.bundles, 2);
        assert_eq!(t.ops, 6);
        assert_eq!(t.stall_cycles(StallCause::Interlock), 5);
        assert_eq!(t.total_stall_cycles(), 55);
        assert_eq!(t.d_misses, 1);
        assert_eq!(t.d_stall_cycles, 50);
        let hot = t.hottest_stall_sites(2);
        assert_eq!(hot[0].0, 7);
        assert_eq!(hot[1].0, 3);
        assert_eq!(t.per_pc[3].bundles, 2);
        assert_eq!(t.per_pc_stalls[3][StallCause::Interlock.index()], 5);
    }

    #[test]
    fn metrics_json_is_emitted() {
        let mut t = CountingTracer::new();
        t.bundle(0, 0, 1);
        t.rfu(
            0,
            RfuEvent::LoopDone {
                cfg: 7,
                busy: 100,
                stall: 3,
            },
        );
        let json = t.to_metrics_json();
        assert!(json.contains("\"bundles\": 1"));
        assert!(json.contains("\"rfu_loops\": 1"));
        assert!(json.contains("\"interlock\""));
    }

    #[test]
    fn null_tracer_is_a_unit() {
        let mut t = NullTracer;
        t.bundle(0, 0, 1);
        t.stall(0, 0, StallCause::Ifetch, 1);
        assert_eq!(std::mem::size_of::<NullTracer>(), 0);
    }
}
