//! Guards the perf contract of the pre-decoded issue path: once a
//! program's [`DecodedCode`] is cached, re-running it must not touch the
//! heap — resolve scratch lives on the stack and write-backs go through
//! fixed-size machine state.
//!
//! Allocations are counted **per thread**: the simulator runs on the test
//! thread, while libtest's harness threads (result channels, timeout
//! bookkeeping) allocate at timing-dependent moments of their own — a
//! process-global count would flake whenever one of those allocations
//! landed inside the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use rvliw_asm::{schedule_st200, Builder};
use rvliw_isa::{Br, Gpr};
use rvliw_sim::Machine;
use rvliw_trace::NullTracer;

struct CountingAlloc;

std::thread_local! {
    /// Heap allocations made by *this* thread. A const-initialized
    /// `Cell<u64>` occupies a plain TLS slot — no lazy allocation, no
    /// destructor registration — so bumping it from inside the allocator
    /// cannot recurse.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with` so allocations during thread teardown (after this
    // thread's TLS was destroyed) are silently dropped instead of
    // panicking inside the allocator.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A pure-arithmetic loop with cross-bundle dependencies: 512 iterations,
/// ~10 ops each, enough cycles to make any per-cycle allocation obvious.
fn hot_loop() -> rvliw_asm::Code {
    let mut b = Builder::new("alloc_probe");
    let i = Gpr::new(1);
    let c = Br::new(0);
    b.movi(i, 512);
    let top = b.label();
    b.bind(top);
    for r in 2..10u8 {
        b.addi(Gpr::new(r), Gpr::new(r), i32::from(r));
    }
    b.subi(i, i, 1);
    b.cmpne_br(c, i, 0);
    b.br(c, top);
    b.halt();
    schedule_st200(&b.build()).unwrap()
}

#[test]
fn warm_issue_loop_does_not_allocate() {
    let code = hot_loop();
    let mut m = Machine::st200();

    // First run pays the one-time decode (and may allocate for it).
    m.run(&code).expect("warm-up run");

    let before = thread_allocs();
    m.run(&code).expect("measured run");
    let after = thread_allocs();

    assert_eq!(
        after - before,
        0,
        "steady-state issue loop allocated {} time(s)",
        after - before
    );

    // The generic tracer path with tracing disabled must uphold the same
    // contract: a `NullTracer` run monomorphizes to the untraced loop, so
    // it may not allocate either.
    let before = thread_allocs();
    m.run_with_tracer(&code, &mut NullTracer)
        .expect("null-traced run");
    let after = thread_allocs();

    assert_eq!(
        after - before,
        0,
        "NullTracer issue loop allocated {} time(s)",
        after - before
    );
}
