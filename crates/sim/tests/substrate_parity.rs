//! Differential tests between the two fetch/issue substrates: the 4-issue
//! VLIW core and the scalar in-order core must agree on every
//! *architectural* observable — final register file, branch registers,
//! data memory contents and memory traffic counts — while disagreeing on
//! timing (the scalar core spends at least one cycle per operation, so it
//! can never be faster). Random kernel programs mirror the generator of
//! `backend_parity.rs`; what differs is the comparison: cycle counts,
//! stall breakdowns and cache hit/miss splits are timing-dependent and
//! deliberately excluded.

use proptest::prelude::*;
use rvliw_asm::{schedule_st200, Builder, Code};
use rvliw_isa::{Br, Gpr, MachineConfig, Substrate};
use rvliw_mem::MemConfig;
use rvliw_sim::Machine;

/// Scratch memory base used by generated loads/stores, comfortably inside
/// the 4 MiB simulated RAM.
const MEM_BASE: i32 = 0x2_0000;

/// The scratch window compared byte-for-byte after each run (covers every
/// offset the generator can produce).
const MEM_WINDOW: u32 = 0x1000;

/// Registers the generator may target; the loop counter and memory base
/// stay out of this pool.
const DATA_REGS: u8 = 8;

const COUNTER: Gpr = Gpr::new(10);
const BASE: Gpr = Gpr::new(11);

/// Everything the two substrates must agree on, bit for bit.
#[derive(Debug, PartialEq, Eq)]
struct Architectural {
    ok: bool,
    gprs: Vec<u32>,
    brs: Vec<bool>,
    ram: Vec<u8>,
    loads: u64,
    stores: u64,
    ops: u64,
    bundles: u64,
    branches_taken: u64,
    ops_by_class: [u64; 5],
}

/// Runs `code` on a fresh machine pinned to `substrate` and splits the
/// observables into the architectural set and the cycle count.
fn observe(code: &Code, substrate: Substrate) -> (Architectural, u64) {
    let mut m = Machine::new(
        MachineConfig::st200().with_substrate(substrate),
        MemConfig::st200(),
    );
    let r = m.run(code);
    let snap = m.snapshot();
    let arch = Architectural {
        ok: r.is_ok(),
        gprs: (0..rvliw_isa::NUM_GPRS as u8)
            .map(|i| m.gpr(Gpr::new(i)))
            .collect(),
        brs: (0..rvliw_isa::NUM_BRS as u8)
            .map(|i| m.br(Br::new(i)))
            .collect(),
        ram: (0..MEM_WINDOW)
            .map(|off| m.mem.ram.load8(MEM_BASE as u32 + off))
            .collect(),
        loads: snap.mem.loads,
        stores: snap.mem.stores,
        ops: snap.stats.ops,
        bundles: snap.stats.bundles,
        branches_taken: snap.stats.branches_taken,
        ops_by_class: snap.stats.ops_by_class,
    };
    (arch, m.cycle())
}

fn assert_substrates_agree(code: &Code, label: &str) {
    let (va, vc) = observe(code, Substrate::Vliw4);
    let (sa, sc) = observe(code, Substrate::ScalarInOrder);
    assert_eq!(va, sa, "{label}: architectural state diverges");
    assert!(
        sc >= vc,
        "{label}: scalar core finished in {sc} cycles, faster than the \
         4-issue VLIW's {vc}"
    );
}

/// Emits one generated operation. `sel` picks the shape, the remaining
/// fields are raw material for registers, immediates and offsets — every
/// mapping is total, so any byte soup becomes a well-formed program.
fn emit(b: &mut Builder, sel: u8, x: u8, y: u8, z: u8, imm: i32) {
    let rd = Gpr::new(1 + x % DATA_REGS);
    let rs1 = Gpr::new(1 + y % DATA_REGS);
    let rs2 = Gpr::new(1 + z % DATA_REGS);
    let bd = Br::new(x % 4);
    // Word-aligned offset within the compared scratch window.
    let woff = (imm & 0xffc).abs();
    match sel % 16 {
        0 => b.add(rd, rs1, rs2),
        1 => b.sub(rd, rs1, rs2),
        2 => b.and(rd, rs1, rs2),
        3 => b.or(rd, rs1, rs2),
        4 => b.xor(rd, rs1, rs2),
        5 => b.sll(rd, rs1, i32::from(z % 31)),
        6 => b.mul(rd, rs1, rs2),
        7 => b.min(rd, rs1, rs2),
        8 => b.max(rd, rs1, rs2),
        9 => b.sad4(rd, rs1, rs2),
        10 => b.movi(rd, imm),
        11 => b.cmplt_br(bd, rs1, rs2),
        12 => b.slct(rd, bd, rs1, rs2),
        13 => b.ldw(rd, BASE, woff),
        14 => b.ldbu(rd, BASE, imm.abs() & 0xfff),
        _ => {
            if x.is_multiple_of(2) {
                b.stw(rs1, BASE, woff);
            } else {
                b.stb(rs1, BASE, imm.abs() & 0xfff);
            }
        }
    }
}

/// Builds a terminating kernel: seeded registers, a bounded counted loop
/// around the generated body, and an optional generated forward skip
/// inside the body. Same shape as the backend-parity generator, so the
/// substrates face the same program population the backends do.
fn build_program(body: &[(u8, u8, u8, u8, i32)], iters: u8, skip_at: Option<usize>) -> Code {
    let mut b = Builder::new("substrate-kernel");
    for i in 0..DATA_REGS {
        // Non-trivial seeds so arithmetic differences are visible.
        b.movi(Gpr::new(1 + i), i32::from(i) * 0x0101_0101 + 7);
    }
    b.movi(BASE, MEM_BASE);
    b.movi(COUNTER, i32::from(iters % 4) + 1);
    let top = b.label();
    b.bind(top);
    let skip = b.label();
    for (k, &(sel, x, y, z, imm)) in body.iter().enumerate() {
        if skip_at == Some(k) {
            b.cmplt_br(Br::new(3), Gpr::new(1 + x % DATA_REGS), COUNTER);
            b.br(Br::new(3), skip);
        }
        emit(&mut b, sel, x, y, z, imm);
    }
    b.bind(skip);
    b.subi(COUNTER, COUNTER, 1);
    b.cmpne_br(Br::new(0), COUNTER, 0);
    b.br(Br::new(0), top);
    b.halt();
    schedule_st200(&b.build()).expect("generated program schedules")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole differential property: random kernel programs produce
    /// identical architectural results on both substrates, and the scalar
    /// core is never faster.
    #[test]
    fn substrates_agree_architecturally_on_random_kernels(
        body in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), -4096i32..4096),
            1..24,
        ),
        iters in any::<u8>(),
        skip_sel in any::<u8>(),
    ) {
        let skip_at = (skip_sel % 3 == 0).then(|| usize::from(skip_sel) % body.len());
        let code = build_program(&body, iters, skip_at);
        assert_substrates_agree(&code, "random kernel");
    }
}

#[test]
fn scalar_core_pays_at_least_one_cycle_per_op() {
    // A bundle-dense program: multi-op bundles make the one-op-per-cycle
    // scalar core strictly slower, not merely no faster.
    let body: Vec<(u8, u8, u8, u8, i32)> =
        (0..12u8).map(|i| (i % 10, i, i + 1, i + 2, 64)).collect();
    let code = build_program(&body, 3, None);
    let (va, vc) = observe(&code, Substrate::Vliw4);
    let (sa, sc) = observe(&code, Substrate::ScalarInOrder);
    assert_eq!(va, sa, "architectural state diverges");
    assert!(
        sc > vc,
        "scalar ({sc} cycles) must be strictly slower than VLIW ({vc})"
    );
    // Each retired op costs the scalar core at least a cycle.
    assert!(sc >= sa.ops, "scalar cycles {sc} below op count {}", sa.ops);
}

#[test]
fn substrates_agree_on_program_error_paths() {
    // A load far outside simulated memory: both substrates must fail, with
    // identical architectural state (the erroring bundle's own staged
    // writes are discarded on both).
    let mut b = Builder::new("oob");
    b.movi(Gpr::new(1), 0x7f00_0000u32 as i32);
    b.addi(Gpr::new(2), Gpr::new(1), 1);
    b.ldw(Gpr::new(3), Gpr::new(1), 0);
    b.halt();
    let code = schedule_st200(&b.build()).expect("schedules");
    let (va, _) = observe(&code, Substrate::Vliw4);
    let (sa, _) = observe(&code, Substrate::ScalarInOrder);
    assert!(!va.ok, "expected the VLIW run to fail");
    assert_eq!(va, sa, "error-path architectural state diverges");
}
