//! Differential tests between the two execution backends: the pre-decoded
//! interpreter and the block-compiled micro-trace engine must be
//! observationally indistinguishable. Randomly generated kernel programs
//! run through both and every observable — the `Result<RunSummary,
//! SimError>`, the final register file, branch registers and cycle
//! counter — must match bit for bit, cold and warm. The fallback paths
//! (mid-run control transfer into the middle of a block, armed fault
//! injection, an attached tracer) are exercised separately.

use proptest::prelude::*;
use rvliw_asm::{schedule_st200, Builder, Code};
use rvliw_fault::{FaultPlan, FaultProfile};
use rvliw_isa::{block_leaders, Br, Gpr};
use rvliw_sim::{ExecBackend, Machine, RunSummary, SimError};
use rvliw_trace::CountingTracer;

/// Runs `code` twice (cold, then warm) on a fresh machine pinned to
/// `backend` and returns every observable of both runs.
#[allow(clippy::type_complexity)]
fn observe(
    code: &Code,
    backend: ExecBackend,
) -> Vec<(Result<RunSummary, SimError>, Vec<u32>, Vec<bool>, u64)> {
    let mut m = Machine::st200();
    m.backend = backend;
    (0..2)
        .map(|_| {
            let r = m.run(code);
            let gprs = (0..rvliw_isa::NUM_GPRS as u8)
                .map(|i| m.gpr(Gpr::new(i)))
                .collect();
            let brs = (0..rvliw_isa::NUM_BRS as u8)
                .map(|i| m.br(Br::new(i)))
                .collect();
            (r, gprs, brs, m.cycle())
        })
        .collect()
}

fn assert_backends_agree(code: &Code, label: &str) {
    let interp = observe(code, ExecBackend::Interpreter);
    let block = observe(code, ExecBackend::BlockCompiled);
    for (pass, (i, b)) in interp.iter().zip(&block).enumerate() {
        assert_eq!(i, b, "{label}: backends diverge on pass {pass}");
    }
}

/// Scratch memory base used by generated loads/stores, comfortably inside
/// the 4 MiB simulated RAM.
const MEM_BASE: i32 = 0x2_0000;

/// Registers the generator may target; the loop counter, memory base and
/// link register stay out of this pool.
const DATA_REGS: u8 = 8;

const COUNTER: Gpr = Gpr::new(10);
const BASE: Gpr = Gpr::new(11);

/// Emits one generated operation. `sel` picks the shape, the remaining
/// fields are raw material for registers, immediates and offsets — every
/// mapping is total, so any byte soup becomes a well-formed program.
fn emit(b: &mut Builder, sel: u8, x: u8, y: u8, z: u8, imm: i32) {
    let rd = Gpr::new(1 + x % DATA_REGS);
    let rs1 = Gpr::new(1 + y % DATA_REGS);
    let rs2 = Gpr::new(1 + z % DATA_REGS);
    let bd = Br::new(x % 4);
    // Word-aligned offset within a 4 KiB window of the scratch region.
    let woff = (imm & 0xffc).abs();
    match sel % 16 {
        0 => b.add(rd, rs1, rs2),
        1 => b.sub(rd, rs1, rs2),
        2 => b.and(rd, rs1, rs2),
        3 => b.or(rd, rs1, rs2),
        4 => b.xor(rd, rs1, rs2),
        5 => b.sll(rd, rs1, i32::from(z % 31)),
        6 => b.mul(rd, rs1, rs2),
        7 => b.min(rd, rs1, rs2),
        8 => b.max(rd, rs1, rs2),
        9 => b.sad4(rd, rs1, rs2),
        10 => b.movi(rd, imm),
        11 => b.cmplt_br(bd, rs1, rs2),
        12 => b.slct(rd, bd, rs1, rs2),
        13 => b.ldw(rd, BASE, woff),
        14 => b.ldbu(rd, BASE, imm.abs() & 0xfff),
        _ => {
            if x.is_multiple_of(2) {
                b.stw(rs1, BASE, woff);
            } else {
                b.stb(rs1, BASE, imm.abs() & 0xfff);
            }
        }
    }
}

/// Builds a terminating kernel: seeded registers, a bounded counted loop
/// around the generated body (so every branch shape is exercised on a
/// back edge), and an optional generated forward skip inside the body.
fn build_program(body: &[(u8, u8, u8, u8, i32)], iters: u8, skip_at: Option<usize>) -> Code {
    let mut b = Builder::new("prop-kernel");
    for i in 0..DATA_REGS {
        // Non-trivial seeds so arithmetic differences are visible.
        b.movi(Gpr::new(1 + i), i32::from(i) * 0x0101_0101 + 7);
    }
    b.movi(BASE, MEM_BASE);
    b.movi(COUNTER, i32::from(iters % 4) + 1);
    let top = b.label();
    b.bind(top);
    let skip = b.label();
    for (k, &(sel, x, y, z, imm)) in body.iter().enumerate() {
        if skip_at == Some(k) {
            // A forward conditional skip over the rest of the body: more
            // block boundaries, plus a not-taken/taken branch mix.
            b.cmplt_br(Br::new(3), Gpr::new(1 + x % DATA_REGS), COUNTER);
            b.br(Br::new(3), skip);
        }
        emit(&mut b, sel, x, y, z, imm);
    }
    b.bind(skip);
    b.subi(COUNTER, COUNTER, 1);
    b.cmpne_br(Br::new(0), COUNTER, 0);
    b.br(Br::new(0), top);
    b.halt();
    schedule_st200(&b.build()).expect("generated program schedules")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole differential property: random kernel programs produce
    /// bit-identical observables on both backends, cold and warm.
    #[test]
    fn backends_bit_identical_on_random_kernels(
        body in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), -4096i32..4096),
            1..24,
        ),
        iters in any::<u8>(),
        skip_sel in any::<u8>(),
    ) {
        let skip_at = (skip_sel % 3 == 0).then(|| usize::from(skip_sel) % body.len());
        let code = build_program(&body, iters, skip_at);
        assert_backends_agree(&code, "random kernel");
    }
}

#[test]
fn backends_agree_on_program_error_paths() {
    // A load far outside simulated memory: both backends must return the
    // same `SimError::Mem` with identical partial statistics and identical
    // register state (in particular, the erroring bundle's own staged
    // writes are discarded on both).
    let mut b = Builder::new("oob");
    b.movi(Gpr::new(1), 0x7f00_0000u32 as i32);
    b.addi(Gpr::new(2), Gpr::new(1), 1);
    b.ldw(Gpr::new(3), Gpr::new(1), 0);
    b.halt();
    let code = schedule_st200(&b.build()).expect("schedules");
    let interp = observe(&code, ExecBackend::Interpreter);
    let block = observe(&code, ExecBackend::BlockCompiled);
    assert!(
        matches!(interp[0].0, Err(SimError::Mem(_))),
        "expected a memory error, got {:?}",
        interp[0].0
    );
    assert_eq!(interp, block, "error-path observables diverge");
}

#[test]
fn mid_run_fallback_matches_interpreter() {
    // A computed `ret` into the middle of a straight-line run: the block
    // backend cannot resume there (the target is not a block leader), so
    // it must hand the pc back to the interpreter mid-run and still
    // produce bit-identical results.
    let build = |target: i32| {
        let mut b = Builder::new("midjump");
        b.movi(Gpr::LINK, target);
        b.ret();
        for i in 0..12 {
            b.addi(Gpr::new(1), Gpr::new(1), i);
        }
        b.halt();
        schedule_st200(&b.build()).expect("schedules")
    };
    // Two-pass: learn the bundle layout (identical for any immediate),
    // then aim the `ret` at the last non-leader bundle.
    let probe = build(0);
    let leaders = block_leaders(probe.bundles());
    let target = (0..leaders.len())
        .rev()
        .find(|&i| !leaders[i])
        .expect("program has a non-leader bundle");
    let code = build(target as i32);

    let mut block = Machine::st200();
    block.backend = ExecBackend::BlockCompiled;
    let rb = block.run(&code).expect("block run succeeds");
    assert_eq!(
        block.backend_stats().fallbacks,
        1,
        "the computed jump must fall back to the interpreter"
    );

    let mut interp = Machine::st200();
    interp.backend = ExecBackend::Interpreter;
    let ri = interp.run(&code).expect("interpreter run succeeds");
    assert_eq!(rb, ri, "fallback run diverges from the interpreter");
    for i in 0..rvliw_isa::NUM_GPRS as u8 {
        assert_eq!(block.gpr(Gpr::new(i)), interp.gpr(Gpr::new(i)), "gpr {i}");
    }
}

#[test]
fn armed_fault_plan_forces_the_interpreter() {
    // Fault injection observes individual accesses, which compiled blocks
    // do not replay — a non-inert plan must route the whole run to the
    // interpreter, and produce exactly what a pinned-interpreter machine
    // produces under the same plan.
    let body = vec![(0u8, 1, 2, 3, 64), (13, 2, 3, 4, 128), (6, 3, 4, 5, 0)];
    let code = build_program(&body, 3, None);
    let plan = FaultPlan::from_profile(FaultProfile::Chaos, 7);

    let mut auto = Machine::st200();
    auto.backend = ExecBackend::Auto;
    auto.set_fault_plan(&plan, "parity");
    let ra = auto.run(&code).expect("faulted run completes");
    assert_eq!(
        auto.backend_stats().block_runs,
        0,
        "block backend engaged under faults"
    );
    assert!(auto.backend_stats().interp_runs > 0, "interpreter not used");

    let mut pinned = Machine::st200();
    pinned.backend = ExecBackend::Interpreter;
    pinned.set_fault_plan(&plan, "parity");
    let rp = pinned.run(&code).expect("pinned run completes");
    assert_eq!(ra, rp, "auto-under-faults diverges from pinned interpreter");
}

#[test]
fn attached_tracer_forces_the_interpreter_and_matches() {
    let body = vec![(0u8, 1, 2, 3, 64), (11, 2, 3, 4, 0), (12, 3, 4, 5, 8)];
    let code = build_program(&body, 2, Some(1));

    let mut traced = Machine::st200();
    traced.backend = ExecBackend::BlockCompiled;
    let mut t = CountingTracer::new();
    let rt = traced
        .run_with_tracer(&code, &mut t)
        .expect("traced run completes");
    assert_eq!(
        traced.backend_stats().block_runs,
        0,
        "block backend engaged under tracing"
    );

    let mut plain = Machine::st200();
    plain.backend = ExecBackend::BlockCompiled;
    let rp = plain.run(&code).expect("plain run completes");
    assert_eq!(rt, rp, "tracing perturbed the simulation");
    assert_eq!(t.bundles, rt.stats.bundles, "tracer bundle count");
}
