//! Core-side simulation counters.

use std::fmt;

/// Counters for the VLIW core (memory and RFU counters live in their own
/// crates and are snapshotted alongside).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total machine cycles (issue + all stall kinds).
    pub cycles: u64,
    /// Bundles issued.
    pub bundles: u64,
    /// Operations issued.
    pub ops: u64,
    /// Cycles lost to scoreboard interlocks (waiting on operand latency).
    pub interlock_stalls: u64,
    /// Cycles lost to RFU-busy interlocks (a kernel loop in flight).
    pub rfu_busy_stalls: u64,
    /// Taken branches.
    pub branches_taken: u64,
    /// Cycles lost to taken-branch bubbles.
    pub branch_stall_cycles: u64,
    /// Cycles lost to instruction-cache misses.
    pub ifetch_stall_cycles: u64,
    /// Operations issued per functional-unit class
    /// (ALU, MUL, LSU, branch, RFU) — the paper's unit-mix view.
    pub ops_by_class: [u64; 5],
}

impl SimStats {
    /// Issued operations per cycle — the exploited ILP.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ops as f64 / self.cycles as f64
    }

    /// Element-wise difference (`self - earlier`).
    #[must_use]
    pub fn delta(&self, earlier: &SimStats) -> SimStats {
        SimStats {
            cycles: self.cycles - earlier.cycles,
            bundles: self.bundles - earlier.bundles,
            ops: self.ops - earlier.ops,
            interlock_stalls: self.interlock_stalls - earlier.interlock_stalls,
            rfu_busy_stalls: self.rfu_busy_stalls - earlier.rfu_busy_stalls,
            branches_taken: self.branches_taken - earlier.branches_taken,
            branch_stall_cycles: self.branch_stall_cycles - earlier.branch_stall_cycles,
            ifetch_stall_cycles: self.ifetch_stall_cycles - earlier.ifetch_stall_cycles,
            ops_by_class: std::array::from_fn(|i| self.ops_by_class[i] - earlier.ops_by_class[i]),
        }
    }

    /// Utilization of a functional-unit class over the measured cycles:
    /// issued operations divided by available slots.
    #[must_use]
    pub fn fu_utilization(&self, class: rvliw_isa::FuClass, slots: usize) -> f64 {
        if self.cycles == 0 || slots == 0 {
            return 0.0;
        }
        let idx = class_index(class);
        self.ops_by_class[idx] as f64 / (self.cycles as f64 * slots as f64)
    }
}

/// Stable index of a functional-unit class in [`SimStats::ops_by_class`].
#[must_use]
pub fn class_index(class: rvliw_isa::FuClass) -> usize {
    match class {
        rvliw_isa::FuClass::Alu => 0,
        rvliw_isa::FuClass::Mul => 1,
        rvliw_isa::FuClass::Mem => 2,
        rvliw_isa::FuClass::Branch => 3,
        rvliw_isa::FuClass::Rfu => 4,
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles {}  bundles {}  ops {} (ipc {:.2})  interlock {}  rfu-busy {}  br-stall {}",
            self.cycles,
            self.bundles,
            self.ops,
            self.ipc(),
            self.interlock_stalls,
            self.rfu_busy_stalls,
            self.branch_stall_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn class_indices_are_distinct() {
        use rvliw_isa::FuClass::*;
        let idx: Vec<usize> = [Alu, Mul, Mem, Branch, Rfu]
            .into_iter()
            .map(class_index)
            .collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn delta_subtracts() {
        let a = SimStats {
            cycles: 100,
            ops: 50,
            ..Default::default()
        };
        let b = SimStats {
            cycles: 40,
            ops: 20,
            ..Default::default()
        };
        let d = a.delta(&b);
        assert_eq!((d.cycles, d.ops), (60, 30));
    }
}
