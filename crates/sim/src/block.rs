//! The block-compiled execution backend: micro-trace compilation of
//! straight-line bundle runs.
//!
//! The pre-decoded interpreter ([`Machine::run`](crate::Machine::run))
//! still pays per-bundle bookkeeping every cycle: per-class statistics
//! bumps, issue-scratch reinitialization, an instruction-cache lookup per
//! bundle, and a wide `ExecKind` match per operation. This module compiles
//! each *basic block* — a maximal straight-line bundle run between control
//! transfers, discovered by [`rvliw_isa::block_leaders`] — into a flat
//! **micro-trace**: per-bundle issue templates (scoreboard read set, RFU
//! interlock flag, pre-resolved instruction-fetch behaviour) plus a
//! contiguous array of [`MicroOp`]s with the per-operation decisions
//! (evaluator function, operand indices, latency) baked in. Executing a
//! block is then a tight loop parameterized only by dynamic inputs:
//! register values and memory/RFU response latencies.
//!
//! **Soundness.** The scoreboard outcome of a straight-line bundle
//! sequence is a pure function of entry state (register-ready times, cache
//! and RFU state), so precomputing the per-bundle templates changes the
//! *representation*, never the transition sequence: every cycle advance,
//! stall split, memory access and statistics delta is performed in the
//! same order with the same operands as the interpreter, and the
//! differential tests assert bit-identical [`RunSummary`]s. The backend
//! only activates for observation-free runs — no per-bundle trace hook, a
//! [`NullTracer`] (every event sink a no-op), and an inert
//! [`FaultPlan`](rvliw_fault::FaultPlan) — so there is no observer whose
//! view could distinguish the backends. Anything else, and any control
//! transfer into the middle of a block (a computed `return` target), falls
//! back to the interpreter mid-run.
//!
//! Compiled blocks are cached on the machine, keyed by the program's
//! 128-bit content address ([`Code::content_key`]) — the same
//! content-addressed identity discipline as `rvliw-cache` — so separately
//! scheduled but identical programs share one compilation and different
//! programs can never cross-serve.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use rvliw_asm::Code;
use rvliw_isa::{block_leaders, Dest, Gpr, NUM_BRS, NUM_GPRS};
use rvliw_mem::MemorySystem;

use crate::decode::{DSrc, DecodedCode, DecodedOp, ExecKind, ScoreRead, NUM_OP_CLASSES};
use crate::exec::PureFn;
use crate::machine::{Machine, SimError, MAX_ISSUE};
use crate::BUNDLE_BYTES;

/// Which issue loop a [`Machine`](crate::Machine) run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Always the pre-decoded interpreter.
    Interpreter,
    /// The block-compiled micro-trace backend. It still falls back to the
    /// interpreter whenever its safety precondition fails (a per-bundle
    /// trace hook, a non-null tracer, a non-inert fault plan) or a control
    /// transfer lands inside a block.
    BlockCompiled,
    /// Pick automatically: block-compiled when safe, interpreter
    /// otherwise. Today this selects exactly like
    /// [`ExecBackend::BlockCompiled`]; the two are distinct so command
    /// lines can say "force the fast backend" and "let the simulator
    /// choose" separately.
    #[default]
    Auto,
}

impl ExecBackend {
    /// Every selectable backend name, for CLI help texts.
    pub const NAMES: [&'static str; 3] = ["interpreter", "block-compiled", "auto"];

    /// The canonical CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExecBackend::Interpreter => "interpreter",
            ExecBackend::BlockCompiled => "block-compiled",
            ExecBackend::Auto => "auto",
        }
    }

    /// Sets the process-wide default backend new [`Machine`]s start with.
    /// Binaries apply their `--backend` flag here once at startup, so the
    /// selection reaches every machine built behind the scenario runner
    /// without widening `Scenario` (the backend must never influence
    /// results, so it must never reach a scenario cache key).
    pub fn set_process_default(self) {
        PROCESS_DEFAULT.store(self as u8, Ordering::Relaxed);
    }

    /// The current process-wide default backend.
    #[must_use]
    pub fn process_default() -> ExecBackend {
        match PROCESS_DEFAULT.load(Ordering::Relaxed) {
            0 => ExecBackend::Interpreter,
            1 => ExecBackend::BlockCompiled,
            _ => ExecBackend::Auto,
        }
    }
}

static PROCESS_DEFAULT: AtomicU8 = AtomicU8::new(ExecBackend::Auto as u8);

impl fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ExecBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interpreter" | "interp" => Ok(ExecBackend::Interpreter),
            "block-compiled" | "block" => Ok(ExecBackend::BlockCompiled),
            "auto" => Ok(ExecBackend::Auto),
            other => Err(format!(
                "unknown backend `{other}` (expected one of: {})",
                ExecBackend::NAMES.join(", ")
            )),
        }
    }
}

/// Telemetry of the block-compiled backend: how runs were dispatched and
/// how the per-machine block cache behaved.
///
/// Deliberately **not** part of [`SimStats`](crate::SimStats) or
/// [`RunSummary`](crate::machine::RunSummary): backend choice must never
/// influence simulation results, so its telemetry must never reach the
/// result structs the scenario cache stores and the tables regress on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendStats {
    /// Runs that started on the block-compiled backend.
    pub block_runs: u64,
    /// Runs that used the interpreter from the start (backend forced off,
    /// tracing active, or fault injection armed).
    pub interp_runs: u64,
    /// Mid-run falls from block execution back to the interpreter
    /// (control transfer into the middle of a block).
    pub fallbacks: u64,
    /// Block-cache lookups (one per block-backend run).
    pub compile_lookups: u64,
    /// Block-cache misses (program compiled on this lookup).
    pub compile_misses: u64,
    /// Cycles simulated under block execution.
    pub block_cycles: u64,
}

impl BackendStats {
    /// Block-cache hit rate over [`BackendStats::compile_lookups`], in
    /// `0.0..=1.0` (`1.0` when there were no lookups).
    #[must_use]
    pub fn block_cache_hit_rate(&self) -> f64 {
        if self.compile_lookups == 0 {
            1.0
        } else {
            1.0 - self.compile_misses as f64 / self.compile_lookups as f64
        }
    }
}

/// Process-wide [`BackendStats`] totals across every machine, mirrored on
/// each counter bump so binaries can report backend telemetry without
/// threading per-machine state through the (result-shape-frozen) runner
/// and cache layers. Sums of relaxed atomic adds: thread-count
/// independent.
static T_BLOCK_RUNS: AtomicU64 = AtomicU64::new(0);
static T_INTERP_RUNS: AtomicU64 = AtomicU64::new(0);
static T_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static T_LOOKUPS: AtomicU64 = AtomicU64::new(0);
static T_MISSES: AtomicU64 = AtomicU64::new(0);
static T_BLOCK_CYCLES: AtomicU64 = AtomicU64::new(0);

/// The process-wide backend telemetry totals (see [`BackendStats`]).
/// Capture once before and once after a region and diff to scope it.
#[must_use]
pub fn backend_totals() -> BackendStats {
    BackendStats {
        block_runs: T_BLOCK_RUNS.load(Ordering::Relaxed),
        interp_runs: T_INTERP_RUNS.load(Ordering::Relaxed),
        fallbacks: T_FALLBACKS.load(Ordering::Relaxed),
        compile_lookups: T_LOOKUPS.load(Ordering::Relaxed),
        compile_misses: T_MISSES.load(Ordering::Relaxed),
        block_cycles: T_BLOCK_CYCLES.load(Ordering::Relaxed),
    }
}

pub(crate) fn note_block_run(lookup_missed: bool) {
    T_BLOCK_RUNS.fetch_add(1, Ordering::Relaxed);
    T_LOOKUPS.fetch_add(1, Ordering::Relaxed);
    if lookup_missed {
        T_MISSES.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) fn note_interp_run() {
    T_INTERP_RUNS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_fallback() {
    T_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_block_cycles(cycles: u64) {
    T_BLOCK_CYCLES.fetch_add(cycles, Ordering::Relaxed);
}

/// One operation of a micro-trace, with the operand-shape decisions taken
/// at compile time so the hot loop never re-matches [`DSrc`] patterns.
/// Shapes the compiler does not specialize fall back to [`MicroOp::Gen`],
/// which re-enters the interpreter's exec phase for that operation only.
#[derive(Debug, Clone)]
enum MicroOp {
    /// Pure op over two register sources (`$r0` encodes as index 0, whose
    /// array slot is never written and stays 0).
    PureGG {
        f: PureFn,
        a: u8,
        b: u8,
        dest: Dest,
        lat: u64,
    },
    /// Pure op over a register and an immediate, in that order.
    PureGI {
        f: PureFn,
        a: u8,
        imm: u32,
        dest: Dest,
        lat: u64,
    },
    /// Pure op over one register source.
    PureG {
        f: PureFn,
        a: u8,
        dest: Dest,
        lat: u64,
    },
    /// Pure op over one immediate (e.g. `movi`).
    PureI {
        f: PureFn,
        imm: u32,
        dest: Dest,
        lat: u64,
    },
    /// Load from `gpr[base] + off`.
    Load {
        base: u8,
        off: u32,
        size: u8,
        sext_from: u8,
        dest: Dest,
        lat: u64,
    },
    /// Store `gpr[val]` to `gpr[base] + off`.
    Store {
        val: u8,
        base: u8,
        off: u32,
        size: u8,
    },
    /// Conditional branch on a branch register, resolved target.
    BrCondB {
        breg: u8,
        on_true: bool,
        target: u32,
    },
    /// Conditional branch on a general register, resolved target.
    BrCondG {
        greg: u8,
        on_true: bool,
        target: u32,
    },
    /// Unconditional jump, resolved target.
    Goto { target: u32 },
    /// Stop the run.
    Halt,
    /// No operation.
    Nop,
    /// Any other shape: executed through the interpreter's exec phase.
    Gen(Box<DecodedOp>),
}

/// Per-bundle issue template of a compiled block.
#[derive(Debug, Clone, Copy)]
struct BundleTpl {
    ops_start: u32,
    reads_start: u32,
    ops_len: u8,
    reads_len: u16,
    /// Wait for the RFU to be free before issuing.
    has_rfu: bool,
    /// Whether this bundle's fetch must consult the instruction cache.
    /// `false` only when the previous bundle in the block fetched the same
    /// (direct-mapped) line: then this fetch is a guaranteed hit and only
    /// the hit counters are bumped ([`Cache::note_repeat_hit`]).
    ifetch: bool,
    /// Fetch byte address of this bundle.
    ifetch_addr: u32,
    /// Whether the exec phase may commit this bundle's register writes in
    /// place instead of through the deferred write-back scratch (see
    /// [`bundle_all_direct`]).
    all_direct: bool,
    /// Statically proven to never interlock *provided the block's live-in
    /// registers were ready at block entry*: every read is fed by an
    /// in-block producer of known latency that completes within the issue
    /// distance, and the bundle does not touch the RFU. Lets the hot path
    /// skip the scoreboard scan entirely.
    no_stall: bool,
}

/// One compiled basic block: bundle templates plus the flat micro-op and
/// scoreboard-read arrays they index.
#[derive(Debug)]
struct Block {
    first_pc: u32,
    bundles: Vec<BundleTpl>,
    ops: Vec<MicroOp>,
    reads: Vec<ScoreRead>,
    /// Operations issued by the whole block, per class (added in one shot
    /// when the block completes).
    total_classes: [u64; NUM_OP_CLASSES],
    /// Per-bundle per-class issue counts, kept out of the hot
    /// [`BundleTpl`] array: only the cold exits (cycle limit, errors
    /// inside a block) reconstruct partial-pass statistics from them.
    class_counts: Vec<[u8; NUM_OP_CLASSES]>,
    /// Registers read before any in-block write — the only entry state the
    /// scoreboard outcome depends on. When all of them are ready at block
    /// entry, every [`BundleTpl::no_stall`] bundle is issue-exact without
    /// scanning its read set.
    live_ins: Vec<ScoreRead>,
}

/// A whole program compiled to micro-traces, cached per machine under the
/// program's content key.
#[derive(Debug)]
pub(crate) struct CompiledBlocks {
    blocks: Vec<Block>,
    /// Bundle index -> block index, `NOT_A_LEADER` for mid-block bundles.
    leader_of: Vec<u32>,
    nbundles: usize,
    /// Whether instruction fetches may be batched (direct-mapped icache;
    /// see [`CompiledBlocks::compile`]). Gates both the same-line repeat
    /// shortcut and the per-block residency memo.
    ifetch_batched: bool,
}

const NOT_A_LEADER: u32 = u32::MAX;

/// How block execution left off.
pub(crate) enum BlockExit {
    /// The program halted; counters are fully flushed.
    Halted,
    /// Control transferred to a bundle that is not a block leader; the
    /// interpreter must continue from this pc.
    Fallback(usize),
}

impl CompiledBlocks {
    /// Compiles every basic block of `code`.
    ///
    /// `icache_line_shift` is `Some(log2(line_size))` when the machine's
    /// instruction cache is direct-mapped — only then may same-line repeat
    /// fetches skip the lookup (set-associative LRU state would drift).
    pub(crate) fn compile(
        code: &Code,
        decoded: &DecodedCode,
        icache_line_shift: Option<u32>,
    ) -> CompiledBlocks {
        let leaders = block_leaders(code.bundles());
        let n = leaders.len();
        let mut blocks = Vec::new();
        let mut leader_of = vec![NOT_A_LEADER; n];
        let mut pc = 0usize;
        while pc < n {
            debug_assert!(leaders[pc]);
            let first_pc = pc;
            let mut end = pc + 1;
            // Extend until the next leader; a control op already forces
            // the following bundle to be a leader, so blocks end at (and
            // include) their control bundle.
            while end < n && !leaders[end] {
                end += 1;
            }
            leader_of[first_pc] = blocks.len() as u32;
            blocks.push(compile_block(first_pc, end, decoded, icache_line_shift));
            pc = end;
        }
        CompiledBlocks {
            blocks,
            leader_of,
            nbundles: n,
            ifetch_batched: icache_line_shift.is_some(),
        }
    }

    /// Number of compiled blocks.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.blocks.len()
    }
}

fn compile_block(
    first_pc: usize,
    end: usize,
    decoded: &DecodedCode,
    icache_line_shift: Option<u32>,
) -> Block {
    let mut bundles = Vec::with_capacity(end - first_pc);
    let mut ops = Vec::new();
    let mut reads = Vec::new();
    let mut total_classes = [0u64; NUM_OP_CLASSES];
    let mut class_counts = Vec::with_capacity(end - first_pc);
    // Symbolic scoreboard: the latest in-block writer of each register as
    // `(bundle offset, Some(latency))`, or `None` latency for writes whose
    // ready time the compiler cannot see (RFU results, the link register).
    let mut gpr_w: [Option<(usize, Option<u64>)>; NUM_GPRS] = [None; NUM_GPRS];
    let mut br_w: [Option<(usize, Option<u64>)>; NUM_BRS] = [None; NUM_BRS];
    let mut live_ins: Vec<ScoreRead> = Vec::new();
    for pc in first_pc..end {
        let k = pc - first_pc;
        let ops_start = ops.len() as u32;
        let reads_start = reads.len() as u32;
        for op in decoded.ops_of(pc) {
            ops.push(lower(op));
        }
        reads.extend_from_slice(decoded.reads_of(pc));
        class_counts.push(*decoded.class_counts_of(pc));
        for (total, &c) in total_classes.iter_mut().zip(decoded.class_counts_of(pc)) {
            *total += u64::from(c);
        }
        // Reads observe pre-bundle state (deferred write-back), so this
        // runs before the bundle's own writes are recorded. A bundle is
        // `no_stall` when every read is fed early enough: a producer of
        // known latency `lat` at offset `p` is ready by offset `k`
        // whenever `lat <= k - p` (issue advances at least one cycle per
        // bundle and whole-machine stalls only push consumers later, never
        // producers). Live-in reads are covered by the entry check.
        let mut no_stall = !decoded.has_rfu(pc);
        for &r in decoded.reads_of(pc) {
            let writer = match r {
                ScoreRead::Gpr(i) => gpr_w[i as usize],
                ScoreRead::Br(i) => br_w[i as usize],
            };
            match writer {
                None => {
                    if !live_ins.contains(&r) {
                        live_ins.push(r);
                    }
                }
                Some((p, Some(lat))) => {
                    if lat > (k - p) as u64 {
                        no_stall = false;
                    }
                }
                Some((_, None)) => no_stall = false,
            }
        }
        for op in decoded.ops_of(pc) {
            // Pure and load results complete `lat` after the cycle that
            // issued them (a load's post-stall cycle only pushes the
            // ready time *and* every later bundle equally). Everything
            // else that writes does so on a schedule the compiler cannot
            // see; record the destination with unknown latency.
            let lat = match op.kind {
                ExecKind::Pure(_) | ExecKind::Load { .. } => Some(op.lat),
                _ => None,
            };
            match op.dest {
                Dest::Gpr(g) => {
                    if !g.is_zero() {
                        gpr_w[g.index() as usize] = Some((k, lat));
                    }
                }
                Dest::Br(b) => br_w[b.index() as usize] = Some((k, lat)),
                Dest::None => {}
            }
            if matches!(op.kind, ExecKind::Call { .. }) {
                // `call` writes the link register as a side effect.
                gpr_w[Gpr::LINK.index() as usize] = Some((k, None));
            }
        }
        let addr = pc as u32 * BUNDLE_BYTES;
        let ifetch = match icache_line_shift {
            // First bundle always consults the cache; later bundles only
            // when they cross into a new line.
            Some(shift) => pc == first_pc || (addr >> shift) != (addr - BUNDLE_BYTES) >> shift,
            None => true,
        };
        bundles.push(BundleTpl {
            ops_start,
            reads_start,
            ops_len: decoded.ops_of(pc).len() as u8,
            reads_len: decoded.reads_of(pc).len() as u16,
            has_rfu: decoded.has_rfu(pc),
            ifetch,
            ifetch_addr: addr,
            all_direct: bundle_all_direct(&ops[ops_start as usize..]),
            no_stall,
        });
    }
    Block {
        first_pc: first_pc as u32,
        bundles,
        ops,
        reads,
        total_classes,
        class_counts,
        live_ins,
    }
}

/// Whether a bundle's register writes may be committed in place during
/// the exec phase instead of going through the deferred write-back
/// scratch. Sound exactly when the scratch is unobservable:
///
/// - no operation reads a register an earlier op of the same bundle
///   wrote, so every source still observes pre-bundle state;
/// - no fallible operation (memory access, interpreter-executed op)
///   follows a register write — a memory error aborts the bundle with its
///   pending writes discarded, and in-place commits could not be undone;
/// - no interpreter-executed ([`MicroOp::Gen`]) op participates (the
///   interpreter's exec phase expects the scratch).
///
/// In-place writes then land in issue order — the same order the
/// write-back loop would apply them.
fn bundle_all_direct(mops: &[MicroOp]) -> bool {
    let (mut gw, mut bw) = (0u64, 0u64);
    let mut wrote = false;
    for mop in mops {
        let (rg, rb, fallible, dest) = match *mop {
            MicroOp::PureGG { a, b, dest, .. } => (1u64 << a | 1u64 << b, 0, false, dest),
            MicroOp::PureGI { a, dest, .. } | MicroOp::PureG { a, dest, .. } => {
                (1u64 << a, 0, false, dest)
            }
            MicroOp::PureI { dest, .. } => (0, 0, false, dest),
            MicroOp::Load { base, dest, .. } => (1u64 << base, 0, true, dest),
            MicroOp::Store { val, base, .. } => (1u64 << val | 1u64 << base, 0, true, Dest::None),
            MicroOp::BrCondB { breg, .. } => (0, 1u64 << breg, false, Dest::None),
            MicroOp::BrCondG { greg, .. } => (1u64 << greg, 0, false, Dest::None),
            MicroOp::Goto { .. } | MicroOp::Halt | MicroOp::Nop => (0, 0, false, Dest::None),
            MicroOp::Gen(_) => return false,
        };
        if rg & gw != 0 || rb & bw != 0 || (fallible && wrote) {
            return false;
        }
        match dest {
            Dest::Gpr(g) if !g.is_zero() => {
                gw |= 1u64 << g.index();
                wrote = true;
            }
            Dest::Br(b) => {
                bw |= 1u64 << b.index();
                wrote = true;
            }
            _ => {}
        }
    }
    true
}

/// Lowers one decoded operation to its micro-trace form.
fn lower(op: &DecodedOp) -> MicroOp {
    // `$r0` reads as array slot 0, which no write-back ever touches.
    let gidx = |s: &DSrc| match *s {
        DSrc::Gpr(i) => Some(i),
        DSrc::Zero => Some(0),
        DSrc::Br(_) | DSrc::Imm(_) => None,
    };
    let gen = || MicroOp::Gen(Box::new(op.clone()));
    match op.kind {
        ExecKind::Pure(f) => match op.srcs() {
            [a, b] => match (gidx(a), gidx(b), b) {
                (Some(a), Some(b), _) => MicroOp::PureGG {
                    f,
                    a,
                    b,
                    dest: op.dest,
                    lat: op.lat,
                },
                (Some(a), None, DSrc::Imm(imm)) => MicroOp::PureGI {
                    f,
                    a,
                    imm: *imm,
                    dest: op.dest,
                    lat: op.lat,
                },
                _ => gen(),
            },
            [a] => match (gidx(a), a) {
                (Some(a), _) => MicroOp::PureG {
                    f,
                    a,
                    dest: op.dest,
                    lat: op.lat,
                },
                (None, DSrc::Imm(imm)) => MicroOp::PureI {
                    f,
                    imm: *imm,
                    dest: op.dest,
                    lat: op.lat,
                },
                _ => gen(),
            },
            _ => gen(),
        },
        ExecKind::Load { size, sext_from } => {
            let (base, off) = match op.srcs() {
                [a] => match (gidx(a), a) {
                    (Some(a), _) => (a, 0),
                    (None, DSrc::Imm(v)) => (0, *v),
                    _ => return gen(),
                },
                [a, DSrc::Imm(v)] => match gidx(a) {
                    Some(a) => (a, *v),
                    None => return gen(),
                },
                _ => return gen(),
            };
            MicroOp::Load {
                base,
                off,
                size: size as u8,
                sext_from,
                dest: op.dest,
                lat: op.lat,
            }
        }
        ExecKind::Store { size } => match op.srcs() {
            [v, a] => match (gidx(v), gidx(a)) {
                (Some(val), Some(base)) => MicroOp::Store {
                    val,
                    base,
                    off: 0,
                    size: size as u8,
                },
                _ => gen(),
            },
            [v, a, DSrc::Imm(off)] => match (gidx(v), gidx(a)) {
                (Some(val), Some(base)) => MicroOp::Store {
                    val,
                    base,
                    off: *off,
                    size: size as u8,
                },
                _ => gen(),
            },
            _ => gen(),
        },
        ExecKind::BrCond {
            on_true,
            target: Some(target),
        } => match op.srcs() {
            [DSrc::Br(b)] => MicroOp::BrCondB {
                breg: *b,
                on_true,
                target,
            },
            [DSrc::Gpr(g)] => MicroOp::BrCondG {
                greg: *g,
                on_true,
                target,
            },
            _ => gen(),
        },
        ExecKind::Goto {
            target: Some(target),
        } => MicroOp::Goto { target },
        ExecKind::Halt => MicroOp::Halt,
        ExecKind::Nop => MicroOp::Nop,
        _ => gen(),
    }
}

/// Whether `mem`'s instruction cache admits the same-line repeat-fetch
/// shortcut (direct-mapped only; see [`BundleTpl::ifetch`]).
pub(crate) fn icache_line_shift(mem: &MemorySystem) -> Option<u32> {
    let geom = mem.icache.geometry();
    (geom.ways == 1).then(|| geom.line_size.trailing_zeros())
}

/// Statistics deltas accumulated locally during block execution and
/// flushed into [`SimStats`](crate::SimStats) in one shot at every exit,
/// so the hot loop performs no per-bundle stats stores.
#[derive(Default)]
struct Agg {
    bundles: u64,
    ops: u64,
    classes: [u64; NUM_OP_CLASSES],
    ifetch_stalls: u64,
    interlock_stalls: u64,
    rfu_busy_stalls: u64,
    branches_taken: u64,
    branch_stalls: u64,
    /// Instruction fetches resolved without consulting the cache (same-line
    /// repeats and proven-resident lines); accounted in one
    /// [`Cache::note_repeat_hits`](rvliw_mem::Cache::note_repeat_hits) call
    /// at flush. Non-zero only under a direct-mapped icache.
    icache_hits: u64,
}

impl Agg {
    fn flush(&self, m: &mut Machine, cyc: u64, entry_cyc: u64) {
        m.cycle = cyc;
        m.stats.bundles += self.bundles;
        m.stats.ops += self.ops;
        for (total, &c) in m.stats.ops_by_class.iter_mut().zip(&self.classes) {
            *total += c;
        }
        m.stats.ifetch_stall_cycles += self.ifetch_stalls;
        m.stats.interlock_stalls += self.interlock_stalls;
        m.stats.rfu_busy_stalls += self.rfu_busy_stalls;
        m.stats.branches_taken += self.branches_taken;
        m.stats.branch_stall_cycles += self.branch_stalls;
        if self.icache_hits > 0 {
            m.mem.icache.note_repeat_hits(self.icache_hits);
        }
        m.backend_stats.block_cycles += cyc - entry_cyc;
        note_block_cycles(cyc - entry_cyc);
    }
}

/// Executes `blocks` from bundle 0 until halt, a non-leader control
/// transfer (interpreter fallback) or an error. All counters — including
/// on the error paths — are left exactly as the interpreter would leave
/// them.
pub(crate) fn run_blocks(
    m: &mut Machine,
    blocks: &CompiledBlocks,
    limit: u64,
) -> Result<BlockExit, SimError> {
    let mut pc = 0usize;
    let mut cyc = m.cycle;
    let entry_cyc = cyc;
    let penalty = m.branch_taken_penalty;
    let mut agg = Agg::default();
    // The issue scratch lives outside the loop and is never reinitialized:
    // only `..nwrites` is ever read back.
    let mut writes: [(Dest, u32, u64); MAX_ISSUE] = [(Dest::None, 0, 0); MAX_ISSUE];
    'blocks: loop {
        if pc >= blocks.nbundles {
            agg.flush(m, cyc, entry_cyc);
            return Err(SimError::FellOffEnd { pc });
        }
        let bi = blocks.leader_of[pc];
        if bi == NOT_A_LEADER {
            agg.flush(m, cyc, entry_cyc);
            return Ok(BlockExit::Fallback(pc));
        }
        let blk = &blocks.blocks[bi as usize];
        let nbundles = blk.bundles.len();
        // Residency memo: when this exact block last completed a full pass
        // with every line already cached — and nothing has been evicted
        // since ([`Cache::contents_gen`]) — every fetch is a guaranteed
        // hit and the per-line lookups are batch-accounted at flush.
        let blk_ptr = std::ptr::from_ref(blk) as usize;
        let icache_gen = m.mem.icache.contents_gen();
        let fast_ifetch = blocks.ifetch_batched && m.icache_resident == (blk_ptr, icache_gen);
        let entry_misses = m.mem.icache.misses;
        // Entry-settled: every live-in register is ready now (`cyc` only
        // grows, so this holds at every later bundle too). Then each
        // `no_stall` bundle skips its scoreboard scan outright.
        let settled = blk.live_ins.iter().all(|&r| {
            let ready = match r {
                ScoreRead::Gpr(i) => m.gpr_ready[i as usize],
                ScoreRead::Br(i) => m.br_ready[i as usize],
            };
            ready <= cyc
        });
        let mut i = 0usize;
        while i < nbundles {
            let bt = &blk.bundles[i];
            if cyc >= limit {
                // The interpreter charges nothing for the bundle it never
                // issued; reconstruct the classes of the issued prefix.
                for cc in &blk.class_counts[..i] {
                    for (total, &c) in agg.classes.iter_mut().zip(cc) {
                        *total += u64::from(c);
                    }
                }
                agg.flush(m, cyc, entry_cyc);
                return Err(SimError::CycleLimit {
                    limit: m.cycle_limit,
                });
            }

            // Instruction fetch. Same-line repeats and proven-resident
            // lines are guaranteed hits, deferred to the flush batch.
            if fast_ifetch || !bt.ifetch {
                agg.icache_hits += 1;
            } else {
                let istall = m.mem.ifetch(bt.ifetch_addr, cyc);
                cyc += istall;
                agg.ifetch_stalls += istall;
            }

            // Scoreboard interlock, split exactly as the interpreter
            // does. Bundles statically proven stall-free (given a settled
            // entry) skip the scan.
            if !(settled && bt.no_stall) {
                let reads = &blk.reads[bt.reads_start as usize..][..bt.reads_len as usize];
                let mut ready_at = cyc;
                for &r in reads {
                    ready_at = ready_at.max(match r {
                        ScoreRead::Gpr(idx) => m.gpr_ready[idx as usize],
                        ScoreRead::Br(idx) => m.br_ready[idx as usize],
                    });
                }
                if bt.has_rfu {
                    ready_at = ready_at.max(m.rfu_busy_until);
                }
                let wait = ready_at - cyc;
                if wait > 0 {
                    let rfu_wait = m.rfu_busy_until.saturating_sub(cyc).min(wait);
                    agg.rfu_busy_stalls += rfu_wait;
                    agg.interlock_stalls += wait - rfu_wait;
                    cyc += wait;
                }
            }

            // Execute phase. Sources observe pre-bundle register state
            // (write-back is deferred), exactly as the interpreter.
            // Bundles statically proven free of intra-bundle hazards
            // ([`bundle_all_direct`]) commit their writes in place as they
            // execute; the rest stage them in the issue scratch and apply
            // them in the write-back phase below.
            let ops = &blk.ops[bt.ops_start as usize..][..bt.ops_len as usize];
            agg.ops += ops.len() as u64;
            let mut nwrites = 0usize;
            let mut next_pc: Option<usize> = None;
            let mut halted = false;
            let pc_abs = blk.first_pc as usize + i;
            // Stage a write in the issue scratch (applied at write-back).
            macro_rules! defer_write {
                ($d:expr, $v:expr, $r:expr) => {{
                    writes[nwrites] = ($d, $v, $r);
                    nwrites += 1;
                }};
            }
            // Commit a write in place, exactly as write-back would.
            macro_rules! direct_write {
                ($d:expr, $v:expr, $r:expr) => {
                    match $d {
                        Dest::None => {}
                        Dest::Gpr(g) => {
                            if !g.is_zero() {
                                m.gpr[g.index() as usize] = $v;
                                m.gpr_ready[g.index() as usize] = $r;
                            }
                        }
                        Dest::Br(b) => {
                            m.br[b.index() as usize] = $v != 0;
                            m.br_ready[b.index() as usize] = $r;
                        }
                    }
                };
            }
            // The exec loop, parameterized by the write-commit policy.
            macro_rules! exec_ops {
                ($commit:ident) => {
                    for op in ops {
                        match *op {
                            MicroOp::PureGG { f, a, b, dest, lat } => {
                                let v = f(&[m.gpr[a as usize], m.gpr[b as usize]]);
                                $commit!(dest, v, cyc + lat);
                            }
                            MicroOp::PureGI {
                                f,
                                a,
                                imm,
                                dest,
                                lat,
                            } => {
                                let v = f(&[m.gpr[a as usize], imm]);
                                $commit!(dest, v, cyc + lat);
                            }
                            MicroOp::PureG { f, a, dest, lat } => {
                                let v = f(&[m.gpr[a as usize]]);
                                $commit!(dest, v, cyc + lat);
                            }
                            MicroOp::PureI { f, imm, dest, lat } => {
                                let v = f(&[imm]);
                                $commit!(dest, v, cyc + lat);
                            }
                            MicroOp::Load {
                                base,
                                off,
                                size,
                                sext_from,
                                dest,
                                lat,
                            } => {
                                let addr = m.gpr[base as usize].wrapping_add(off);
                                let acc = match m.mem.read(addr, u32::from(size), cyc) {
                                    Ok(acc) => acc,
                                    Err(e) => {
                                        exec_error_flush(m, &mut agg, blk, i, cyc, entry_cyc);
                                        return Err(SimError::Mem(e));
                                    }
                                };
                                // Whole-machine stall on a miss.
                                cyc += acc.stall;
                                let v = match sext_from {
                                    16 => acc.value as u16 as i16 as i32 as u32,
                                    8 => acc.value as u8 as i8 as i32 as u32,
                                    _ => acc.value,
                                };
                                $commit!(dest, v, cyc + lat);
                            }
                            MicroOp::Store {
                                val,
                                base,
                                off,
                                size,
                            } => {
                                let addr = m.gpr[base as usize].wrapping_add(off);
                                let value = m.gpr[val as usize];
                                let acc = match m.mem.write(addr, u32::from(size), value, cyc) {
                                    Ok(acc) => acc,
                                    Err(e) => {
                                        exec_error_flush(m, &mut agg, blk, i, cyc, entry_cyc);
                                        return Err(SimError::Mem(e));
                                    }
                                };
                                cyc += acc.stall;
                            }
                            MicroOp::BrCondB {
                                breg,
                                on_true,
                                target,
                            } => {
                                if m.br[breg as usize] == on_true {
                                    next_pc = Some(target as usize);
                                }
                            }
                            MicroOp::BrCondG {
                                greg,
                                on_true,
                                target,
                            } => {
                                if (m.gpr[greg as usize] != 0) == on_true {
                                    next_pc = Some(target as usize);
                                }
                            }
                            MicroOp::Goto { target } => next_pc = Some(target as usize),
                            MicroOp::Halt => halted = true,
                            MicroOp::Nop => {}
                            MicroOp::Gen(ref dop) => {
                                // The interpreter's exec phase for this
                                // operation: gather sources, sync the cycle
                                // counter across the call (it may stall),
                                // restore it after. Its writes always go
                                // through the scratch (`bundle_all_direct`
                                // is false for bundles containing one).
                                let mut slot = [0u32; rvliw_isa::MAX_SRCS];
                                let nsrcs = dop.srcs().len();
                                for (s, v) in dop.srcs().iter().zip(slot.iter_mut()) {
                                    *v = match *s {
                                        DSrc::Gpr(idx) => m.gpr[idx as usize],
                                        DSrc::Zero => 0,
                                        DSrc::Br(idx) => u32::from(m.br[idx as usize]),
                                        DSrc::Imm(imm) => imm,
                                    };
                                }
                                m.cycle = cyc;
                                let r = m.exec_op(
                                    dop,
                                    &slot[..nsrcs],
                                    &mut writes,
                                    &mut nwrites,
                                    &mut next_pc,
                                    &mut halted,
                                    pc_abs,
                                    &mut rvliw_trace::NullTracer,
                                );
                                cyc = m.cycle;
                                if let Err(e) = r {
                                    exec_error_flush(m, &mut agg, blk, i, cyc, entry_cyc);
                                    return Err(e);
                                }
                            }
                        }
                    }
                };
            }
            if bt.all_direct {
                exec_ops!(direct_write);
            } else {
                exec_ops!(defer_write);
            }

            // Write-back phase (no-op for all-direct bundles).
            for &(dest, value, ready) in &writes[..nwrites] {
                match dest {
                    Dest::None => {}
                    Dest::Gpr(r) => {
                        if !r.is_zero() {
                            m.gpr[r.index() as usize] = value;
                            m.gpr_ready[r.index() as usize] = ready;
                        }
                    }
                    Dest::Br(b) => {
                        m.br[b.index() as usize] = value != 0;
                        m.br_ready[b.index() as usize] = ready;
                    }
                }
            }

            agg.bundles += 1;
            cyc += 1;

            if halted {
                for (total, &c) in agg.classes.iter_mut().zip(&blk.total_classes) {
                    *total += c;
                }
                note_resident(m, blocks, fast_ifetch, entry_misses, blk_ptr, icache_gen);
                agg.flush(m, cyc, entry_cyc);
                return Ok(BlockExit::Halted);
            }
            if let Some(t) = next_pc {
                agg.branches_taken += 1;
                cyc += penalty;
                agg.branch_stalls += penalty;
                for (total, &c) in agg.classes.iter_mut().zip(&blk.total_classes) {
                    *total += c;
                }
                note_resident(m, blocks, fast_ifetch, entry_misses, blk_ptr, icache_gen);
                pc = t;
                continue 'blocks;
            }
            i += 1;
        }
        // Fell through the block into the next leader.
        for (total, &c) in agg.classes.iter_mut().zip(&blk.total_classes) {
            *total += c;
        }
        note_resident(m, blocks, fast_ifetch, entry_misses, blk_ptr, icache_gen);
        pc = blk.first_pc as usize + nbundles;
    }
}

/// Records the just-completed block as fully icache-resident when its
/// pass produced no new fill. Control operations always end their block,
/// so every successful exit is a full pass: each of the block's lines was
/// either looked up (hitting) this pass or covered by an earlier memo that
/// is still valid (the generation stamp has not moved).
#[inline]
fn note_resident(
    m: &mut Machine,
    blocks: &CompiledBlocks,
    fast_ifetch: bool,
    entry_misses: u64,
    blk_ptr: usize,
    icache_gen: u64,
) {
    if blocks.ifetch_batched && !fast_ifetch && m.mem.icache.misses == entry_misses {
        m.icache_resident = (blk_ptr, icache_gen);
    }
}

/// Cold path: an error escaped the exec phase of bundle `i`. The
/// interpreter had already counted that bundle's ops and classes (but not
/// the bundle itself); reconstruct the same totals before flushing.
fn exec_error_flush(
    m: &mut Machine,
    agg: &mut Agg,
    blk: &Block,
    i: usize,
    cyc: u64,
    entry_cyc: u64,
) {
    for cc in &blk.class_counts[..=i] {
        for (total, &c) in agg.classes.iter_mut().zip(cc) {
            *total += u64::from(c);
        }
    }
    agg.flush(m, cyc, entry_cyc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvliw_asm::Builder;
    use rvliw_isa::{Gpr, MachineConfig};

    fn compile(b: Builder) -> Code {
        rvliw_asm::schedule_st200(&b.build()).unwrap()
    }

    #[test]
    fn backend_parses_and_displays() {
        for name in ExecBackend::NAMES {
            let b: ExecBackend = name.parse().unwrap();
            assert_eq!(b.name(), name);
        }
        assert!("warp-drive".parse::<ExecBackend>().is_err());
    }

    #[test]
    fn straight_line_program_compiles_to_one_block() {
        let mut b = Builder::new("t");
        b.movi(Gpr::new(1), 20);
        b.addi(Gpr::new(2), Gpr::new(1), 22);
        b.halt();
        let code = compile(b);
        let decoded = DecodedCode::new(&code, &MachineConfig::st200());
        let blocks = CompiledBlocks::compile(&code, &decoded, Some(6));
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks.nbundles, code.bundles().len());
    }

    #[test]
    fn loop_program_splits_at_the_back_edge() {
        let mut b = Builder::new("t");
        let (i, acc) = (Gpr::new(1), Gpr::new(2));
        let c = rvliw_isa::Br::new(0);
        b.movi(i, 10);
        b.movi(acc, 0);
        let top = b.label();
        b.bind(top);
        b.add(acc, acc, i);
        b.subi(i, i, 1);
        b.cmpne_br(c, i, 0);
        b.br(c, top);
        b.halt();
        let code = compile(b);
        let decoded = DecodedCode::new(&code, &MachineConfig::st200());
        let blocks = CompiledBlocks::compile(&code, &decoded, Some(6));
        // At least: preamble block, loop-body block, epilogue block.
        assert!(blocks.len() >= 3, "{} blocks", blocks.len());
        // Every bundle belongs to exactly one block.
        let covered: usize = blocks.blocks.iter().map(|b| b.bundles.len()).sum();
        assert_eq!(covered, code.bundles().len());
    }

    #[test]
    fn hit_rate_on_empty_stats_is_one() {
        assert!((BackendStats::default().block_cache_hit_rate() - 1.0).abs() < 1e-12);
    }
}
