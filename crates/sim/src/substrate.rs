//! The [`Core`] trait: a swappable fetch/issue engine over the machine.
//!
//! The paper's results are measured on a single 4-issue VLIW host; the
//! cross-substrate study asks how much of the RFU win survives on a
//! 1-issue host. Both engines share everything architectural — register
//! file, memory hierarchy, fault plans, RFU datapath, and the
//! [`exec_op`](Machine) operation semantics — and differ only in *when*
//! operations issue:
//!
//! * [`VliwCore`] issues a whole bundle per cycle (parallel-read VLIW
//!   semantics, the paper's machine);
//! * [`ScalarCore`] issues one operation per cycle on an in-order
//!   5-stage pipe, with a longer branch refill.
//!
//! Both read operands against pre-bundle register state and defer
//! write-back to bundle retirement, so every program produces identical
//! architectural results (register file, memory contents, access counts,
//! RFU outputs) on both substrates — only cycle and stall counts differ.

use rvliw_asm::Code;
use rvliw_isa::Dest;
use rvliw_trace::{StallCause, Tracer};

use crate::decode::{DSrc, DecodedCode, ScoreRead};
use crate::machine::{Machine, SimError, TraceHook, MAX_ISSUE};
use crate::stats::SimStats;
use crate::BUNDLE_BYTES;

/// Extra branch-taken bubble cycles the scalar 5-stage pipe pays on top
/// of the machine's configured penalty (deeper front end to refill).
pub const SCALAR_EXTRA_BRANCH_BUBBLE: u64 = 2;

/// One substrate's fetch/issue engine over the shared [`Machine`] state.
///
/// The driver loop calls, per bundle: [`Core::fetch`], then
/// [`Core::scoreboard`], then [`Core::issue`], then [`Core::retire`].
/// Fetch, scoreboard, retirement and the stats surface are shared
/// (provided methods); the issue policy and branch bubble are what a
/// substrate defines.
pub trait Core {
    /// Substrate name for diagnostics.
    const NAME: &'static str;

    /// Branch-taken bubble length on this substrate, in cycles.
    #[must_use]
    fn branch_bubble(m: &Machine) -> u64;

    /// Issues and executes the bundle at `pc` under this substrate's
    /// issue policy, reading operands against pre-bundle register state
    /// and pushing deferred writes for [`Core::retire`].
    ///
    /// # Errors
    ///
    /// As for [`Machine::run`].
    #[allow(clippy::too_many_arguments)]
    fn issue<T: Tracer + ?Sized>(
        m: &mut Machine,
        decoded: &DecodedCode,
        pc: usize,
        writes: &mut [(Dest, u32, u64); MAX_ISSUE],
        nwrites: &mut usize,
        next_pc: &mut Option<usize>,
        halted: &mut bool,
        tracer: &mut T,
    ) -> Result<(), SimError>;

    /// Charges instruction fetch for the bundle at `pc` (shared: both
    /// substrates fetch each bundle once, at the same addresses).
    fn fetch<T: Tracer + ?Sized>(m: &mut Machine, pc: usize, tracer: &mut T) {
        let istall = m
            .mem
            .ifetch_traced(pc as u32 * BUNDLE_BYTES, m.cycle, tracer);
        if istall > 0 {
            tracer.stall(m.cycle, pc, StallCause::Ifetch, istall);
        }
        m.cycle += istall;
        m.stats.ifetch_stall_cycles += istall;
    }

    /// Scoreboard interlock (shared): every source of every operation in
    /// the bundle must be ready (parallel-read semantics), and RFU
    /// operations wait for the unit to be free. The decoded read list
    /// already excludes immediates and `$r0`, which are always ready.
    fn scoreboard<T: Tracer + ?Sized>(
        m: &mut Machine,
        decoded: &DecodedCode,
        pc: usize,
        tracer: &mut T,
    ) {
        let mut ready_at = m.cycle;
        for &r in decoded.reads_of(pc) {
            ready_at = ready_at.max(match r {
                ScoreRead::Gpr(i) => m.gpr_ready[i as usize],
                ScoreRead::Br(i) => m.br_ready[i as usize],
            });
        }
        if decoded.has_rfu(pc) {
            ready_at = ready_at.max(m.rfu_busy_until);
        }
        let wait = ready_at - m.cycle;
        if wait > 0 {
            // Any stall that overlaps the RFU's busy window is time the
            // core spends waiting for the reconfigurable unit (either
            // for the unit itself or for a long-latency result).
            let rfu_wait = m.rfu_busy_until.saturating_sub(m.cycle).min(wait);
            m.stats.rfu_busy_stalls += rfu_wait;
            m.stats.interlock_stalls += wait - rfu_wait;
            if rfu_wait > 0 {
                tracer.stall(m.cycle, pc, StallCause::RfuBusy, rfu_wait);
            }
            if wait > rfu_wait {
                tracer.stall(m.cycle, pc, StallCause::Interlock, wait - rfu_wait);
            }
            m.cycle += wait;
        }
    }

    /// Retires the bundle (shared): applies deferred write-backs, counts
    /// the bundle, spends its final issue cycle and resolves control flow
    /// with this substrate's branch bubble.
    fn retire<T: Tracer + ?Sized>(
        m: &mut Machine,
        writes: &[(Dest, u32, u64)],
        next_pc: Option<usize>,
        pc: &mut usize,
        tracer: &mut T,
    ) {
        for &(dest, value, ready) in writes {
            match dest {
                Dest::None => {}
                Dest::Gpr(r) => {
                    if !r.is_zero() {
                        m.gpr[r.index() as usize] = value;
                        m.gpr_ready[r.index() as usize] = ready;
                    }
                }
                Dest::Br(b) => {
                    m.br[b.index() as usize] = value != 0;
                    m.br_ready[b.index() as usize] = ready;
                }
            }
        }
        m.stats.bundles += 1;
        m.cycle += 1;
        match next_pc {
            Some(t) => {
                m.stats.branches_taken += 1;
                let bubble = Self::branch_bubble(m);
                if bubble > 0 {
                    tracer.stall(m.cycle, *pc, StallCause::BranchBubble, bubble);
                }
                *pc = t;
                m.cycle += bubble;
                m.stats.branch_stall_cycles += bubble;
            }
            None => *pc += 1,
        }
    }

    /// The substrate-independent stats surface (all counters live on the
    /// shared machine; substrates only differ in how fast they advance).
    #[must_use]
    fn stats(m: &Machine) -> &SimStats {
        &m.stats
    }
}

/// Resolves one operation's sources against pre-bundle register state.
fn resolve_srcs(m: &Machine, srcs: &[DSrc], slot: &mut [u32; rvliw_isa::MAX_SRCS]) {
    for (s, v) in srcs.iter().zip(slot.iter_mut()) {
        *v = match *s {
            DSrc::Gpr(i) => m.gpr[i as usize],
            DSrc::Zero => 0,
            DSrc::Br(i) => u32::from(m.br[i as usize]),
            DSrc::Imm(imm) => imm,
        };
    }
}

/// Bumps the per-class and total op counters for the bundle at `pc`.
fn count_ops(m: &mut Machine, decoded: &DecodedCode, pc: usize) {
    m.stats.ops += decoded.ops_of(pc).len() as u64;
    for (total, &n) in m
        .stats
        .ops_by_class
        .iter_mut()
        .zip(decoded.class_counts_of(pc))
    {
        *total += u64::from(n);
    }
}

/// The paper's 4-issue VLIW engine: the whole bundle issues in one cycle.
#[derive(Debug, Clone, Copy)]
pub struct VliwCore;

impl Core for VliwCore {
    const NAME: &'static str = "vliw4";

    fn branch_bubble(m: &Machine) -> u64 {
        m.branch_taken_penalty
    }

    fn issue<T: Tracer + ?Sized>(
        m: &mut Machine,
        decoded: &DecodedCode,
        pc: usize,
        writes: &mut [(Dest, u32, u64); MAX_ISSUE],
        nwrites: &mut usize,
        next_pc: &mut Option<usize>,
        halted: &mut bool,
        tracer: &mut T,
    ) -> Result<(), SimError> {
        let ops = decoded.ops_of(pc);
        tracer.bundle(m.cycle, pc, ops.len());
        count_ops(m, decoded, pc);
        for op in ops {
            let mut slot = [0u32; rvliw_isa::MAX_SRCS];
            let nsrcs = op.srcs().len();
            resolve_srcs(m, op.srcs(), &mut slot);
            m.exec_op(
                op,
                &slot[..nsrcs],
                writes,
                nwrites,
                next_pc,
                halted,
                pc,
                tracer,
            )?;
        }
        Ok(())
    }
}

/// The scalar in-order 5-stage RISC engine: one operation per cycle.
///
/// Operands still read pre-bundle state and write-back is still deferred
/// to retirement, so architectural results are identical to
/// [`VliwCore`]'s — the substrate only spends `ops.len()` issue cycles
/// per bundle instead of one, and pays
/// [`SCALAR_EXTRA_BRANCH_BUBBLE`] extra cycles per taken branch.
#[derive(Debug, Clone, Copy)]
pub struct ScalarCore;

impl Core for ScalarCore {
    const NAME: &'static str = "scalar";

    fn branch_bubble(m: &Machine) -> u64 {
        m.branch_taken_penalty + SCALAR_EXTRA_BRANCH_BUBBLE
    }

    fn issue<T: Tracer + ?Sized>(
        m: &mut Machine,
        decoded: &DecodedCode,
        pc: usize,
        writes: &mut [(Dest, u32, u64); MAX_ISSUE],
        nwrites: &mut usize,
        next_pc: &mut Option<usize>,
        halted: &mut bool,
        tracer: &mut T,
    ) -> Result<(), SimError> {
        let ops = decoded.ops_of(pc);
        tracer.bundle(m.cycle, pc, ops.len());
        count_ops(m, decoded, pc);
        for (i, op) in ops.iter().enumerate() {
            let mut slot = [0u32; rvliw_isa::MAX_SRCS];
            let nsrcs = op.srcs().len();
            resolve_srcs(m, op.srcs(), &mut slot);
            m.exec_op(
                op,
                &slot[..nsrcs],
                writes,
                nwrites,
                next_pc,
                halted,
                pc,
                tracer,
            )?;
            // One issue slot per operation; the last op's slot is spent
            // by the shared retirement step.
            if i + 1 < ops.len() {
                m.cycle += 1;
            }
        }
        Ok(())
    }
}

/// The shared interpreter driver: fetch → scoreboard → issue → retire,
/// per bundle, until `halt`, monomorphized per substrate (and per tracer,
/// so the untraced loop stays zero-cost).
pub(crate) fn run_decoded<C: Core, T: Tracer + ?Sized>(
    m: &mut Machine,
    code: &Code,
    decoded: &DecodedCode,
    mut trace: Option<TraceHook<'_>>,
    tracer: &mut T,
    limit: u64,
    mut pc: usize,
) -> Result<(), SimError> {
    let mut halted = false;
    // Call stack is implicit: `call` writes the return bundle index to
    // `$r63`, `return` jumps to it.
    while !halted {
        if pc >= decoded.len() {
            return Err(SimError::FellOffEnd { pc });
        }
        if m.cycle >= limit {
            return Err(SimError::CycleLimit {
                limit: m.cycle_limit,
            });
        }
        if let Some(t) = trace.as_deref_mut() {
            t(m.cycle, pc, &code.bundles()[pc]);
        }
        C::fetch(m, pc, tracer);
        C::scoreboard(m, decoded, pc, tracer);
        let mut writes: [(Dest, u32, u64); MAX_ISSUE] = [(Dest::None, 0, 0); MAX_ISSUE];
        let mut nwrites = 0usize;
        let mut next_pc: Option<usize> = None;
        C::issue(
            m,
            decoded,
            pc,
            &mut writes,
            &mut nwrites,
            &mut next_pc,
            &mut halted,
            tracer,
        )?;
        C::retire(m, &writes[..nwrites], next_pc, &mut pc, tracer);
    }
    Ok(())
}
