#![warn(missing_docs)]
//! # rvliw-sim
//!
//! Cycle-level simulator for the RFU-augmented ST200-like VLIW.
//!
//! The model follows the paper's compiled-simulator platform:
//!
//! * one [`Code`] bundle issues per cycle (4-issue, parallel-read VLIW
//!   semantics);
//! * a register **scoreboard** interlocks on compiler-visible latencies
//!   (ALU 1, multiply 3, load 3, compare-to-branch 2);
//! * loads and stores go through the modelled data cache; **on a data-cache
//!   miss the whole machine stalls**, and those stall cycles are what
//!   Tables 4–5 of the paper report;
//! * instruction fetch goes through the 128 KB I-cache (the benchmark fits
//!   entirely, so I-stalls are negligible — as the paper assumes);
//! * `RFU*` operations dispatch to the [`Rfu`](rvliw_rfu::Rfu) model: short custom
//!   instructions execute in one cycle, macroblock prefetches run as a
//!   separate non-blocking thread, and kernel-loop instructions occupy the
//!   RFU for their static latency plus any memory stalls.
//!
//! ```
//! use rvliw_asm::Builder;
//! use rvliw_isa::Gpr;
//! use rvliw_sim::Machine;
//!
//! let mut b = Builder::new("doc");
//! b.movi(Gpr::new(1), 20);
//! b.addi(Gpr::new(2), Gpr::new(1), 22);
//! b.halt();
//! let code = rvliw_asm::schedule_st200(&b.build()).unwrap();
//! let mut m = Machine::st200();
//! m.run(&code).unwrap();
//! assert_eq!(m.gpr(Gpr::new(2)), 42);
//! ```

pub mod block;
pub mod decode;
pub mod exec;
pub mod machine;
pub mod stats;
pub mod substrate;

pub use block::{backend_totals, BackendStats, ExecBackend};
pub use decode::DecodedCode;
pub use machine::{Machine, RunSummary, SimError, Snapshot};
pub use rvliw_isa::Substrate;
pub use stats::SimStats;
pub use substrate::{Core, ScalarCore, VliwCore, SCALAR_EXTRA_BRANCH_BUBBLE};

use rvliw_asm::Code;

/// Bytes of instruction memory charged per bundle when probing the I-cache
/// (four 32-bit syllables).
pub const BUNDLE_BYTES: u32 = 16;

/// One-shot convenience: build a machine, run `code`, return it for
/// inspection.
///
/// # Errors
///
/// Propagates [`SimError`] from [`Machine::run`].
pub fn run_st200(code: &Code) -> Result<Machine, SimError> {
    let mut m = Machine::st200();
    m.run(code)?;
    Ok(m)
}
