//! Pure functional semantics of the scalar and SIMD operations.
//!
//! Branch-register sources are resolved to `0`/`1` before reaching these
//! functions, so every operand is a `u32`.

use rvliw_isa::{simd, Opcode};

/// The signature of a lowered pure operation: resolved sources in, result
/// out.
pub type PureFn = fn(&[u32]) -> u32;

/// Evaluates a pure (non-memory, non-control, non-RFU) operation over its
/// resolved source values. Returns the destination value — a boolean result
/// for comparisons is `0`/`1`.
///
/// # Panics
///
/// Panics when called for an operation with side effects (loads, stores,
/// branches, RFU dispatch) — the machine handles those — or with too few
/// sources, which the assembler-built programs never produce.
#[must_use]
pub fn eval_pure(opcode: Opcode, s: &[u32]) -> u32 {
    match pure_fn(opcode) {
        Some(f) => f(s),
        None => panic!("{opcode} has side effects; handled by the machine"),
    }
}

/// The lowered evaluator for a pure opcode, or `None` for operations with
/// side effects (handled by the machine's exec phase). The pre-decoded
/// issue loop resolves this once per static operation instead of matching
/// on the opcode every cycle.
#[must_use]
pub fn pure_fn(opcode: Opcode) -> Option<PureFn> {
    use Opcode::*;
    Some(match opcode {
        Add => |s| s[0].wrapping_add(s[1]),
        Sub => |s| s[0].wrapping_sub(s[1]),
        And => |s| s[0] & s[1],
        Andc => |s| s[0] & !s[1],
        Or => |s| s[0] | s[1],
        Xor => |s| s[0] ^ s[1],
        Nor => |s| !(s[0] | s[1]),
        Sll => |s| simd::sll(s[0], s[1]),
        Srl => |s| simd::srl(s[0], s[1]),
        Sra => |s| simd::sra(s[0], s[1]),
        Min => |s| (s[0] as i32).min(s[1] as i32) as u32,
        Max => |s| (s[0] as i32).max(s[1] as i32) as u32,
        Minu => |s| s[0].min(s[1]),
        Maxu => |s| s[0].max(s[1]),
        Mov => |s| s[0],
        Sxtb => |s| s[0] as u8 as i8 as i32 as u32,
        Sxth => |s| s[0] as u16 as i16 as i32 as u32,
        Zxtb => |s| s[0] & 0xff,
        Zxth => |s| s[0] & 0xffff,
        Extbu => |s| (s[0] >> (8 * (s[1] & 3))) & 0xff,
        // insb rd = rs1 with byte<s[2]> := low8(rs2)
        Insb => |s| {
            let lane = s[2] & 3;
            let mask = 0xffu32 << (8 * lane);
            (s[0] & !mask) | ((s[1] & 0xff) << (8 * lane))
        },
        // slct rd = b ? rs1 : rs2 — s[0] is the resolved branch register.
        Slct => |s| if s[0] != 0 { s[1] } else { s[2] },
        CmpEq => |s| u32::from(s[0] == s[1]),
        CmpNe => |s| u32::from(s[0] != s[1]),
        CmpLt => |s| u32::from((s[0] as i32) < (s[1] as i32)),
        CmpLe => |s| u32::from((s[0] as i32) <= (s[1] as i32)),
        CmpGt => |s| u32::from((s[0] as i32) > (s[1] as i32)),
        CmpGe => |s| u32::from((s[0] as i32) >= (s[1] as i32)),
        CmpLtu => |s| u32::from(s[0] < s[1]),
        CmpLeu => |s| u32::from(s[0] <= s[1]),
        CmpGtu => |s| u32::from(s[0] > s[1]),
        CmpGeu => |s| u32::from(s[0] >= s[1]),
        Mul => |s| s[0].wrapping_mul(s[1]),
        Mulh => |s| (((s[0] as i32 as i64) * (s[1] as i32 as i64)) >> 32) as u32,
        Mull16 => |s| ((s[0] as u16 as i16 as i32).wrapping_mul(s[1] as i32)) as u32,
        Add4 => |s| simd::add4(s[0], s[1]),
        Sub4 => |s| simd::sub4(s[0], s[1]),
        Adds4u => |s| simd::adds4u(s[0], s[1]),
        Subs4u => |s| simd::subs4u(s[0], s[1]),
        Avg4 => |s| simd::avg4(s[0], s[1]),
        Avg4r => |s| simd::avg4r(s[0], s[1]),
        Absd4 => |s| simd::absd4(s[0], s[1]),
        Sad4 => |s| simd::sad4(s[0], s[1]),
        Max4u => |s| simd::max4u(s[0], s[1]),
        Min4u => |s| simd::min4u(s[0], s[1]),
        Avgh4 => |s| simd::avgh4(s[0], s[1]),
        Lsbh4 => |s| simd::lsbh4(s[0], s[1]),
        Rfix4 => |s| simd::rfix4(s[0], s[1]),
        Dadj4 => |s| simd::dadj4(s[0], s[1], s[2]),
        Hadd2 => |s| simd::hadd2(s[0], s[1], s[2]),
        Rnd2 => |s| simd::rnd2(s[0]),
        Pack4 => |s| simd::pack4(s[0], s[1]),
        Nop => |_| 0,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_arithmetic() {
        assert_eq!(eval_pure(Opcode::Add, &[3, 4]), 7);
        assert_eq!(eval_pure(Opcode::Sub, &[3, 4]), u32::MAX);
        assert_eq!(eval_pure(Opcode::Min, &[u32::MAX, 1]), u32::MAX); // signed -1 < 1
        assert_eq!(eval_pure(Opcode::Minu, &[u32::MAX, 1]), 1);
    }

    #[test]
    fn extract_insert_bytes() {
        let w = 0x4433_2211;
        assert_eq!(eval_pure(Opcode::Extbu, &[w, 0]), 0x11);
        assert_eq!(eval_pure(Opcode::Extbu, &[w, 3]), 0x44);
        assert_eq!(eval_pure(Opcode::Insb, &[w, 0xaa, 1]), 0x4433_aa11);
    }

    #[test]
    fn select_uses_condition() {
        assert_eq!(eval_pure(Opcode::Slct, &[1, 10, 20]), 10);
        assert_eq!(eval_pure(Opcode::Slct, &[0, 10, 20]), 20);
    }

    #[test]
    fn compares_signed_vs_unsigned() {
        assert_eq!(eval_pure(Opcode::CmpLt, &[u32::MAX, 0]), 1); // -1 < 0
        assert_eq!(eval_pure(Opcode::CmpLtu, &[u32::MAX, 0]), 0);
    }

    #[test]
    fn multiply_high_part() {
        assert_eq!(eval_pure(Opcode::Mulh, &[0x8000_0000, 2]), u32::MAX); // -2^31 * 2 >> 32 = -1
        assert_eq!(eval_pure(Opcode::Mul, &[7, 6]), 42);
    }

    #[test]
    fn sign_extensions() {
        assert_eq!(eval_pure(Opcode::Sxtb, &[0x80]), 0xffff_ff80);
        assert_eq!(eval_pure(Opcode::Sxth, &[0x8000]), 0xffff_8000);
        assert_eq!(eval_pure(Opcode::Zxtb, &[0xabc]), 0xbc);
    }

    #[test]
    #[should_panic(expected = "side effects")]
    fn memory_ops_rejected() {
        let _ = eval_pure(Opcode::Ldw, &[0, 0]);
    }

    #[test]
    fn pure_fn_covers_exactly_the_side_effect_free_opcodes() {
        use rvliw_isa::FuClass;
        for &op in Opcode::all() {
            let side_effects = matches!(op.class(), FuClass::Mem | FuClass::Branch | FuClass::Rfu);
            assert_eq!(pure_fn(op).is_none(), side_effects, "{op}");
        }
    }
}
