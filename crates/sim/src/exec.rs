//! Pure functional semantics of the scalar and SIMD operations.
//!
//! Branch-register sources are resolved to `0`/`1` before reaching these
//! functions, so every operand is a `u32`.

use rvliw_isa::{simd, Opcode};

/// Evaluates a pure (non-memory, non-control, non-RFU) operation over its
/// resolved source values. Returns the destination value — a boolean result
/// for comparisons is `0`/`1`.
///
/// # Panics
///
/// Panics when called for an operation with side effects (loads, stores,
/// branches, RFU dispatch) — the machine handles those — or with too few
/// sources, which the assembler-built programs never produce.
#[must_use]
pub fn eval_pure(opcode: Opcode, s: &[u32]) -> u32 {
    use Opcode::*;
    let a = || s[0];
    let b = || s[1];
    match opcode {
        Add => a().wrapping_add(b()),
        Sub => a().wrapping_sub(b()),
        And => a() & b(),
        Andc => a() & !b(),
        Or => a() | b(),
        Xor => a() ^ b(),
        Nor => !(a() | b()),
        Sll => simd::sll(a(), b()),
        Srl => simd::srl(a(), b()),
        Sra => simd::sra(a(), b()),
        Min => (a() as i32).min(b() as i32) as u32,
        Max => (a() as i32).max(b() as i32) as u32,
        Minu => a().min(b()),
        Maxu => a().max(b()),
        Mov => a(),
        Sxtb => a() as u8 as i8 as i32 as u32,
        Sxth => a() as u16 as i16 as i32 as u32,
        Zxtb => a() & 0xff,
        Zxth => a() & 0xffff,
        Extbu => (a() >> (8 * (b() & 3))) & 0xff,
        // insb rd = rs1 with byte<s[2]> := low8(rs2)
        Insb => {
            let lane = s[2] & 3;
            let mask = 0xffu32 << (8 * lane);
            (a() & !mask) | ((b() & 0xff) << (8 * lane))
        }
        // slct rd = b ? rs1 : rs2 — s[0] is the resolved branch register.
        Slct => {
            if s[0] != 0 {
                s[1]
            } else {
                s[2]
            }
        }
        CmpEq => u32::from(a() == b()),
        CmpNe => u32::from(a() != b()),
        CmpLt => u32::from((a() as i32) < (b() as i32)),
        CmpLe => u32::from((a() as i32) <= (b() as i32)),
        CmpGt => u32::from((a() as i32) > (b() as i32)),
        CmpGe => u32::from((a() as i32) >= (b() as i32)),
        CmpLtu => u32::from(a() < b()),
        CmpLeu => u32::from(a() <= b()),
        CmpGtu => u32::from(a() > b()),
        CmpGeu => u32::from(a() >= b()),
        Mul => a().wrapping_mul(b()),
        Mulh => (((a() as i32 as i64) * (b() as i32 as i64)) >> 32) as u32,
        Mull16 => ((a() as u16 as i16 as i32).wrapping_mul(b() as i32)) as u32,
        Add4 => simd::add4(a(), b()),
        Sub4 => simd::sub4(a(), b()),
        Adds4u => simd::adds4u(a(), b()),
        Subs4u => simd::subs4u(a(), b()),
        Avg4 => simd::avg4(a(), b()),
        Avg4r => simd::avg4r(a(), b()),
        Absd4 => simd::absd4(a(), b()),
        Sad4 => simd::sad4(a(), b()),
        Max4u => simd::max4u(a(), b()),
        Min4u => simd::min4u(a(), b()),
        Avgh4 => simd::avgh4(a(), b()),
        Lsbh4 => simd::lsbh4(a(), b()),
        Rfix4 => simd::rfix4(a(), b()),
        Dadj4 => simd::dadj4(a(), b(), s[2]),
        Hadd2 => simd::hadd2(a(), b(), s[2]),
        Rnd2 => simd::rnd2(a()),
        Pack4 => simd::pack4(a(), b()),
        Nop => 0,
        _ => panic!("{opcode} has side effects; handled by the machine"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_arithmetic() {
        assert_eq!(eval_pure(Opcode::Add, &[3, 4]), 7);
        assert_eq!(eval_pure(Opcode::Sub, &[3, 4]), u32::MAX);
        assert_eq!(eval_pure(Opcode::Min, &[u32::MAX, 1]), u32::MAX); // signed -1 < 1
        assert_eq!(eval_pure(Opcode::Minu, &[u32::MAX, 1]), 1);
    }

    #[test]
    fn extract_insert_bytes() {
        let w = 0x4433_2211;
        assert_eq!(eval_pure(Opcode::Extbu, &[w, 0]), 0x11);
        assert_eq!(eval_pure(Opcode::Extbu, &[w, 3]), 0x44);
        assert_eq!(eval_pure(Opcode::Insb, &[w, 0xaa, 1]), 0x4433_aa11);
    }

    #[test]
    fn select_uses_condition() {
        assert_eq!(eval_pure(Opcode::Slct, &[1, 10, 20]), 10);
        assert_eq!(eval_pure(Opcode::Slct, &[0, 10, 20]), 20);
    }

    #[test]
    fn compares_signed_vs_unsigned() {
        assert_eq!(eval_pure(Opcode::CmpLt, &[u32::MAX, 0]), 1); // -1 < 0
        assert_eq!(eval_pure(Opcode::CmpLtu, &[u32::MAX, 0]), 0);
    }

    #[test]
    fn multiply_high_part() {
        assert_eq!(eval_pure(Opcode::Mulh, &[0x8000_0000, 2]), u32::MAX); // -2^31 * 2 >> 32 = -1
        assert_eq!(eval_pure(Opcode::Mul, &[7, 6]), 42);
    }

    #[test]
    fn sign_extensions() {
        assert_eq!(eval_pure(Opcode::Sxtb, &[0x80]), 0xffff_ff80);
        assert_eq!(eval_pure(Opcode::Sxth, &[0x8000]), 0xffff_8000);
        assert_eq!(eval_pure(Opcode::Zxtb, &[0xabc]), 0xbc);
    }

    #[test]
    #[should_panic(expected = "side effects")]
    fn memory_ops_rejected() {
        let _ = eval_pure(Opcode::Ldw, &[0, 0]);
    }
}
