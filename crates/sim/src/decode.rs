//! Pre-decoded programs: the simulator's fast path.
//!
//! [`Machine::run`](crate::Machine::run) executes a program tens of
//! thousands of times per case study (once per motion-estimation
//! candidate). The original issue loop re-matched `Opcode`/`Src` enums and
//! re-derived latencies and functional-unit classes for every operation on
//! every cycle. [`DecodedCode`] lowers a scheduled [`Code`] **once** into
//! dense per-bundle metadata:
//!
//! * an [`ExecKind`] discriminant with the per-opcode decisions already
//!   taken (load width and sign extension, branch sense, RFU configuration
//!   id, and — for pure operations — a direct `fn(&[u32]) -> u32`);
//! * the compiler-visible result latency and statistics class index;
//! * a flattened scoreboard read list per bundle (immediates and `$r0`,
//!   which can never raise the ready time, are dropped at decode time);
//! * a per-bundle `has_rfu` flag replacing the per-cycle `is_rfu` scan.
//!
//! The lowering is purely a change of representation: the machine's
//! decoded issue loop performs the same state transitions in the same
//! order as the original interpretive loop, so cycle counts and all
//! statistics are bit-identical.

use rvliw_asm::Code;
use rvliw_isa::{Dest, MachineConfig, Opcode, Src, MAX_SRCS};

use crate::exec::{pure_fn, PureFn};
use crate::machine::MAX_ISSUE;
use crate::stats::class_index;

/// A source operand lowered for the simulator: register indices are bare
/// `usize`s and immediates are pre-cast to `u32`.
#[derive(Debug, Clone, Copy)]
pub enum DSrc {
    /// General-purpose register read (never `$r0`).
    Gpr(u8),
    /// The always-zero register `$r0`.
    Zero,
    /// Branch register read.
    Br(u8),
    /// Immediate, already cast to the datapath width.
    Imm(u32),
}

/// A register read that participates in the scoreboard interlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreRead {
    /// Wait on a general-purpose register.
    Gpr(u8),
    /// Wait on a branch register.
    Br(u8),
}

/// The pre-matched execution discriminant of one operation.
#[derive(Debug, Clone, Copy)]
pub enum ExecKind {
    /// Memory load: access width in bytes plus the value adjustment.
    Load {
        /// Access size in bytes (1, 2 or 4).
        size: u32,
        /// Sign-extend the loaded value from this many bits (8 or 16);
        /// `0` keeps the raw value (word and unsigned loads).
        sext_from: u8,
    },
    /// Memory store: access width in bytes.
    Store {
        /// Access size in bytes (1, 2 or 4).
        size: u32,
    },
    /// Software prefetch.
    Pft,
    /// Conditional branch.
    BrCond {
        /// Branch when the condition is non-zero (`brt`) or zero (`brf`).
        on_true: bool,
        /// Resolved target bundle index (`None` only for unscheduled
        /// hand-built programs; taking such a branch panics exactly like
        /// the interpretive loop did).
        target: Option<u32>,
    },
    /// Unconditional jump.
    Goto {
        /// Resolved target bundle index.
        target: Option<u32>,
    },
    /// Call: link register write plus jump.
    Call {
        /// Resolved target bundle index.
        target: Option<u32>,
    },
    /// Return through the link register (or an explicit source).
    Ret,
    /// Stop the run.
    Halt,
    /// No operation.
    Nop,
    /// RFU configuration load.
    RfuInit(u16),
    /// RFU operand send.
    RfuSend(u16),
    /// RFU execute (short custom instruction or kernel loop).
    RfuExec(u16),
    /// RFU macroblock prefetch.
    RfuPref(u16),
    /// Side-effect-free operation, lowered to a direct evaluator.
    Pure(PureFn),
    /// An operation the decoder could not lower (an RFU opcode built
    /// without its configuration id, or an opcode with no evaluator).
    /// Executing it fails with
    /// [`SimError::Undecodable`](crate::SimError::Undecodable) instead
    /// of panicking; scheduled programs never contain one.
    Undecodable {
        /// What was missing.
        what: &'static str,
    },
}

/// One lowered operation.
#[derive(Debug, Clone)]
pub struct DecodedOp {
    /// Pre-matched execution discriminant.
    pub kind: ExecKind,
    /// Destination (or [`Dest::None`]).
    pub dest: Dest,
    srcs: [DSrc; MAX_SRCS],
    nsrcs: u8,
    /// Compiler-visible result latency on this machine configuration.
    pub lat: u64,
    /// Index into `SimStats::ops_by_class`.
    pub class_idx: u8,
}

impl DecodedOp {
    /// The lowered source operands.
    #[must_use]
    pub fn srcs(&self) -> &[DSrc] {
        &self.srcs[..self.nsrcs as usize]
    }
}

/// Number of functional-unit classes tracked by
/// [`SimStats::ops_by_class`](crate::SimStats).
pub const NUM_OP_CLASSES: usize = 5;

/// Per-bundle slices into the flat operation and read arrays.
#[derive(Debug, Clone, Copy)]
struct BundleMeta {
    ops_start: u32,
    ops_len: u8,
    reads_start: u32,
    reads_len: u16,
    has_rfu: bool,
    /// Issued operations per functional-unit class, pre-counted so the
    /// issue loop bumps five fixed counters instead of one indexed
    /// counter per op.
    class_counts: [u8; NUM_OP_CLASSES],
}

/// A program lowered for a specific [`MachineConfig`] (latencies are baked
/// in, so a decoded program must only run on machines with the same
/// configuration — [`Machine`](crate::Machine) guarantees this by caching
/// per instance).
#[derive(Debug)]
pub struct DecodedCode {
    code_id: u64,
    meta: Vec<BundleMeta>,
    ops: Vec<DecodedOp>,
    reads: Vec<ScoreRead>,
}

impl DecodedCode {
    /// Lowers `code` for machines configured as `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if a bundle is wider than [`MAX_ISSUE`] — such a program
    /// could never issue on any supported machine.
    #[must_use]
    pub fn new(code: &Code, cfg: &MachineConfig) -> Self {
        let mut meta = Vec::with_capacity(code.bundles().len());
        let mut ops = Vec::with_capacity(code.num_ops());
        let mut reads = Vec::new();
        for bundle in code.bundles() {
            let nops = bundle.ops().len();
            assert!(
                nops <= MAX_ISSUE,
                "bundle of {nops} ops exceeds the simulator's issue scratch"
            );
            let ops_start = ops.len() as u32;
            let reads_start = reads.len() as u32;
            let mut has_rfu = false;
            let mut class_counts = [0u8; NUM_OP_CLASSES];
            for op in bundle.ops() {
                has_rfu |= op.opcode.is_rfu();
                class_counts[class_index(op.opcode.class())] += 1;
                for &s in op.srcs() {
                    match s {
                        Src::Gpr(r) if !r.is_zero() => reads.push(ScoreRead::Gpr(r.index())),
                        Src::Gpr(_) | Src::Imm(_) => {}
                        Src::Br(b) => reads.push(ScoreRead::Br(b.index())),
                    }
                }
                ops.push(decode_op(op, cfg));
            }
            meta.push(BundleMeta {
                ops_start,
                ops_len: nops as u8,
                reads_start,
                reads_len: (reads.len() as u32 - reads_start) as u16,
                has_rfu,
                class_counts,
            });
        }
        DecodedCode {
            code_id: code.id(),
            meta,
            ops,
            reads,
        }
    }

    /// The identity of the [`Code`] this was lowered from.
    #[must_use]
    pub fn code_id(&self) -> u64 {
        self.code_id
    }

    /// Number of bundles (the program counter domain).
    #[must_use]
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the program has no bundles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// The lowered operations of bundle `pc`.
    #[inline]
    #[must_use]
    pub fn ops_of(&self, pc: usize) -> &[DecodedOp] {
        let m = &self.meta[pc];
        &self.ops[m.ops_start as usize..m.ops_start as usize + m.ops_len as usize]
    }

    /// The scoreboard reads of bundle `pc`.
    #[inline]
    #[must_use]
    pub fn reads_of(&self, pc: usize) -> &[ScoreRead] {
        let m = &self.meta[pc];
        &self.reads[m.reads_start as usize..m.reads_start as usize + m.reads_len as usize]
    }

    /// Whether bundle `pc` contains an RFU operation (and must interlock on
    /// the unit being free).
    #[inline]
    #[must_use]
    pub fn has_rfu(&self, pc: usize) -> bool {
        self.meta[pc].has_rfu
    }

    /// Issued operations of bundle `pc` per functional-unit class.
    #[inline]
    #[must_use]
    pub fn class_counts_of(&self, pc: usize) -> &[u8; NUM_OP_CLASSES] {
        &self.meta[pc].class_counts
    }
}

/// Lowers an RFU opcode, degrading to [`ExecKind::Undecodable`] when the
/// configuration id is absent (possible only in hand-built code).
fn rfu_kind(cfg: Option<u16>, make: fn(u16) -> ExecKind, what: &'static str) -> ExecKind {
    match cfg {
        Some(c) => make(c),
        None => ExecKind::Undecodable { what },
    }
}

fn decode_op(op: &rvliw_isa::Op, cfg: &MachineConfig) -> DecodedOp {
    use Opcode::*;
    let kind = match op.opcode {
        Ldw => ExecKind::Load {
            size: 4,
            sext_from: 0,
        },
        Ldh => ExecKind::Load {
            size: 2,
            sext_from: 16,
        },
        Ldhu => ExecKind::Load {
            size: 2,
            sext_from: 0,
        },
        Ldb => ExecKind::Load {
            size: 1,
            sext_from: 8,
        },
        Ldbu => ExecKind::Load {
            size: 1,
            sext_from: 0,
        },
        Stw => ExecKind::Store { size: 4 },
        Sth => ExecKind::Store { size: 2 },
        Stb => ExecKind::Store { size: 1 },
        Pft => ExecKind::Pft,
        BrT => ExecKind::BrCond {
            on_true: true,
            target: op.target,
        },
        BrF => ExecKind::BrCond {
            on_true: false,
            target: op.target,
        },
        Goto => ExecKind::Goto { target: op.target },
        Call => ExecKind::Call { target: op.target },
        Ret => ExecKind::Ret,
        Halt => ExecKind::Halt,
        Nop => ExecKind::Nop,
        RfuInit => rfu_kind(
            op.cfg,
            ExecKind::RfuInit,
            "rfuinit without a configuration id",
        ),
        RfuSend => rfu_kind(
            op.cfg,
            ExecKind::RfuSend,
            "rfusend without a configuration id",
        ),
        RfuExec | RfuLoop => rfu_kind(
            op.cfg,
            ExecKind::RfuExec,
            "rfuexec without a configuration id",
        ),
        RfuPref => rfu_kind(
            op.cfg,
            ExecKind::RfuPref,
            "rfupref without a configuration id",
        ),
        opcode => match pure_fn(opcode) {
            Some(f) => ExecKind::Pure(f),
            None => ExecKind::Undecodable {
                what: "opcode has no evaluator",
            },
        },
    };
    let mut srcs = [DSrc::Imm(0); MAX_SRCS];
    for (d, &s) in srcs.iter_mut().zip(op.srcs()) {
        *d = match s {
            Src::Gpr(r) if r.is_zero() => DSrc::Zero,
            Src::Gpr(r) => DSrc::Gpr(r.index()),
            Src::Br(b) => DSrc::Br(b.index()),
            Src::Imm(v) => DSrc::Imm(v as u32),
        };
    }
    DecodedOp {
        kind,
        dest: op.dest,
        srcs,
        nsrcs: op.srcs().len() as u8,
        lat: cfg.latency(op),
        class_idx: class_index(op.opcode.class()) as u8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvliw_asm::Builder;
    use rvliw_isa::Gpr;

    #[test]
    fn decode_flattens_bundles_and_drops_non_register_reads() {
        let mut b = Builder::new("d");
        b.movi(Gpr::new(1), 7); // imm source only: no scoreboard read
        b.add(Gpr::new(2), Gpr::new(1), 5); // one gpr read + imm
        b.halt();
        let code = rvliw_asm::schedule_st200(&b.build()).unwrap();
        let cfg = MachineConfig::st200();
        let d = DecodedCode::new(&code, &cfg);
        assert_eq!(d.len(), code.bundles().len());
        let total_ops: usize = (0..d.len()).map(|pc| d.ops_of(pc).len()).sum();
        assert_eq!(total_ops, code.num_ops());
        let total_reads: usize = (0..d.len()).map(|pc| d.reads_of(pc).len()).sum();
        assert_eq!(total_reads, 1, "only the add's register source interlocks");
        assert!((0..d.len()).all(|pc| !d.has_rfu(pc)));
    }

    #[test]
    fn latencies_match_the_configuration() {
        let mut b = Builder::new("lat");
        b.movi(Gpr::new(1), 3);
        b.mul(Gpr::new(2), Gpr::new(1), Gpr::new(1));
        b.halt();
        let code = rvliw_asm::schedule_st200(&b.build()).unwrap();
        let cfg = MachineConfig::st200();
        let d = DecodedCode::new(&code, &cfg);
        let mut lats = Vec::new();
        for pc in 0..d.len() {
            for op in d.ops_of(pc) {
                lats.push(op.lat);
            }
        }
        assert!(lats.contains(&cfg.lat_mul), "mul latency baked in");
        assert!(lats.contains(&cfg.lat_alu), "alu latency baked in");
    }
}
