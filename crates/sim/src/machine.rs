//! The machine: register state, scoreboard, issue loop.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use rvliw_asm::{Code, CodeKey};
use rvliw_fault::FaultPlan;
use rvliw_isa::{Dest, Gpr, MachineConfig, Substrate, NUM_BRS, NUM_GPRS};
use rvliw_mem::{MemConfig, MemError, MemStats, MemorySystem};
use rvliw_rfu::{Rfu, RfuStats};
use rvliw_trace::{NullTracer, StallCause, Tracer};

use crate::block::{self, BackendStats, BlockExit, CompiledBlocks, ExecBackend};
use crate::decode::{DecodedCode, DecodedOp, ExecKind};
use crate::stats::SimStats;
use crate::substrate::{self, ScalarCore, VliwCore};

/// Per-bundle execution-trace hook: `(cycle, pc, bundle)`.
pub(crate) type TraceHook<'a> = &'a mut dyn FnMut(u64, usize, &rvliw_isa::Bundle);

/// Widest bundle the issue scratch supports (the machine configuration may
/// widen the datapath beyond the default 4-issue, up to this bound).
pub const MAX_ISSUE: usize = 16;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle budget ran out before `halt` (runaway program).
    CycleLimit {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// An RFU dispatch failed (unknown configuration, missing operands…).
    Rfu(String),
    /// The program counter left the program without a `halt`.
    FellOffEnd {
        /// The out-of-range bundle index.
        pc: usize,
    },
    /// A load or store was rejected by the memory system.
    Mem(MemError),
    /// A taken branch, goto or call had no resolved target (hand-built,
    /// unscheduled code).
    UnresolvedTarget {
        /// Bundle index of the faulting control-flow operation.
        pc: usize,
    },
    /// An operation could not be lowered at decode time (hand-built
    /// code; see [`ExecKind::Undecodable`](crate::decode::ExecKind)).
    Undecodable {
        /// What was missing.
        what: &'static str,
    },
}

impl SimError {
    /// Whether a supervised rerun could plausibly succeed.
    ///
    /// Transient failures are the ones fault injection (or an overloaded
    /// budget under it) produces: a cycle-budget overrun and any RFU
    /// failure (which is where injected line-buffer delays and deadlocks
    /// surface). Structural program failures — memory violations, falling
    /// off the program, unresolved targets, undecodable operations — are
    /// permanent: the same program fails the same way every time.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            SimError::CycleLimit { .. } | SimError::Rfu(_) => true,
            SimError::FellOffEnd { .. }
            | SimError::Mem(_)
            | SimError::UnresolvedTarget { .. }
            | SimError::Undecodable { .. } => false,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
            SimError::Rfu(e) => write!(f, "RFU error: {e}"),
            SimError::FellOffEnd { pc } => write!(f, "execution fell off the program at {pc}"),
            SimError::Mem(e) => write!(f, "memory error: {e}"),
            SimError::UnresolvedTarget { pc } => {
                write!(f, "control-flow operation at {pc} has no resolved target")
            }
            SimError::Undecodable { what } => write!(f, "undecodable operation: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemError> for SimError {
    fn from(e: MemError) -> Self {
        SimError::Mem(e)
    }
}

/// Summary of one [`Machine::run`] invocation (deltas over the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Cycles elapsed during this run.
    pub cycles: u64,
    /// Core counters delta.
    pub stats: SimStats,
    /// Memory counters delta.
    pub mem: MemStats,
    /// RFU counters delta.
    pub rfu: RfuStats,
}

/// A point-in-time snapshot of all counters, for measuring regions that
/// span several runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Machine cycle at the snapshot.
    pub cycle: u64,
    /// Core counters.
    pub stats: SimStats,
    /// Memory counters.
    pub mem: MemStats,
    /// RFU counters.
    pub rfu: RfuStats,
}

impl Snapshot {
    /// The region between `earlier` and `self`.
    #[must_use]
    pub fn since(&self, earlier: &Snapshot) -> RunSummary {
        RunSummary {
            cycles: self.cycle - earlier.cycle,
            stats: self.stats.delta(&earlier.stats),
            mem: self.mem.delta(&earlier.mem),
            rfu: self.rfu.delta(&earlier.rfu),
        }
    }
}

/// The RFU-augmented VLIW machine.
///
/// State persists across [`Machine::run`] calls — caches stay warm, the
/// cycle counter keeps counting, RFU prefetches keep flying — so a workload
/// driver can invoke a kernel once per motion-estimation candidate and
/// measure realistic cross-call memory behaviour.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    /// The memory hierarchy.
    pub mem: MemorySystem,
    /// The reconfigurable functional unit.
    pub rfu: Rfu,
    pub(crate) gpr: [u32; NUM_GPRS],
    pub(crate) br: [bool; NUM_BRS],
    pub(crate) gpr_ready: [u64; NUM_GPRS],
    pub(crate) br_ready: [u64; NUM_BRS],
    pub(crate) rfu_busy_until: u64,
    pub(crate) cycle: u64,
    pub(crate) stats: SimStats,
    /// Extra cycles charged on a taken branch (pipeline refill).
    pub branch_taken_penalty: u64,
    /// Per-run cycle budget guarding against runaway programs.
    pub cycle_limit: u64,
    /// Which issue loop runs eligible programs (new machines inherit
    /// [`ExecBackend::process_default`]). The choice never changes results
    /// — only how fast they are simulated.
    pub backend: ExecBackend,
    /// Pre-decoded programs, keyed by content address
    /// ([`Code::content_key`]) so separately scheduled but identical
    /// programs share one lowering and different programs can never
    /// collide. The lowering bakes in this machine's latencies, so the
    /// cache is per-instance.
    decoded: HashMap<CodeKey, Arc<DecodedCode>>,
    /// Block-compiled programs, same keying discipline as `decoded`.
    blocks: HashMap<CodeKey, Arc<CompiledBlocks>>,
    /// Whether the installed fault plan is the zero plan — the
    /// block-compiled backend only engages when it is (fault injection
    /// observes individual accesses, which blocks do not replay for it).
    fault_inert: bool,
    pub(crate) backend_stats: BackendStats,
    /// Identity memo for the hot run-the-same-program-again path: the
    /// [`Code::id`] whose artifacts `memo_decoded`/`memo_blocks` hold
    /// (`0` = none; ids start at 1). Purely an accelerator over the
    /// content-keyed maps — two distinct `Code` objects with equal content
    /// still share one lowering through the maps.
    memo_code_id: u64,
    memo_decoded: Option<Arc<DecodedCode>>,
    memo_blocks: Option<Arc<CompiledBlocks>>,
    /// Block-residency memo for the block backend: `(block address,
    /// icache contents generation)` of a block whose lines were all
    /// resident on its last full pass. Block addresses stay valid because
    /// compiled blocks are cached for the machine's lifetime.
    pub(crate) icache_resident: (usize, u64),
}

impl Machine {
    /// A machine with the paper's default core and memory configuration.
    #[must_use]
    pub fn st200() -> Self {
        Machine::new(MachineConfig::st200(), MemConfig::st200())
    }

    /// A machine with explicit configurations.
    #[must_use]
    pub fn new(cfg: MachineConfig, mem_cfg: MemConfig) -> Self {
        Machine {
            cfg,
            mem: MemorySystem::new(mem_cfg),
            rfu: Rfu::new(),
            gpr: [0; NUM_GPRS],
            br: [false; NUM_BRS],
            gpr_ready: [0; NUM_GPRS],
            br_ready: [0; NUM_BRS],
            rfu_busy_until: 0,
            cycle: 0,
            stats: SimStats::default(),
            branch_taken_penalty: 1,
            cycle_limit: 200_000_000,
            backend: ExecBackend::process_default(),
            decoded: HashMap::new(),
            blocks: HashMap::new(),
            fault_inert: true,
            backend_stats: BackendStats::default(),
            memo_code_id: 0,
            memo_decoded: None,
            memo_blocks: None,
            icache_resident: (0, 0),
        }
    }

    /// The core configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current machine cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Reads a general-purpose register.
    #[must_use]
    pub fn gpr(&self, r: Gpr) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.gpr[r.index() as usize]
        }
    }

    /// Writes a general-purpose register (immediately ready — used to pass
    /// arguments before a run).
    pub fn set_gpr(&mut self, r: Gpr, value: u32) {
        if !r.is_zero() {
            self.gpr[r.index() as usize] = value;
            self.gpr_ready[r.index() as usize] = self.cycle;
        }
    }

    /// Reads a branch register.
    #[must_use]
    pub fn br(&self, b: rvliw_isa::Br) -> bool {
        self.br[b.index() as usize]
    }

    /// Snapshot of every counter.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cycle: self.cycle,
            stats: self.stats,
            mem: self.mem.stats(),
            rfu: self.rfu.stats,
        }
    }

    /// Derives per-component injectors from `plan` (salted with `salt`,
    /// typically a scenario label) and installs them into the memory
    /// system and the RFU. The zero-fault plan installs inert injectors.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan, salt: &str) {
        self.fault_inert = plan.is_inert();
        self.mem.set_fault(plan.injector("mem", salt));
        self.rfu.set_fault(plan.injector("rfu", salt));
    }

    /// Telemetry of the execution-backend dispatch on this machine (see
    /// [`BackendStats`]; process-wide totals are at
    /// [`backend_totals`](crate::backend_totals)).
    #[must_use]
    pub fn backend_stats(&self) -> BackendStats {
        self.backend_stats
    }

    /// The pre-decoded form of `code` for this machine's configuration,
    /// lowering and caching it on first sight, keyed by content address
    /// ([`Code::content_key`]) rather than the process-unique [`Code::id`]
    /// so identical programs scheduled separately share one lowering.
    pub fn decoded(&mut self, code: &Code) -> Arc<DecodedCode> {
        if self.memo_code_id == code.id() {
            if let Some(d) = &self.memo_decoded {
                return Arc::clone(d);
            }
        }
        let key = code.content_key();
        let d = match self.decoded.get(&key) {
            Some(d) => Arc::clone(d),
            None => {
                let d = Arc::new(DecodedCode::new(code, &self.cfg));
                self.decoded.insert(key, Arc::clone(&d));
                d
            }
        };
        self.memo_code_id = code.id();
        self.memo_decoded = Some(Arc::clone(&d));
        self.memo_blocks = None;
        d
    }

    /// The block-compiled form of `code` (same content-address keying as
    /// [`Machine::decoded`]), compiling on first sight and bumping the
    /// backend telemetry.
    fn compiled_blocks(&mut self, code: &Code, decoded: &DecodedCode) -> Arc<CompiledBlocks> {
        self.backend_stats.block_runs += 1;
        self.backend_stats.compile_lookups += 1;
        if self.memo_code_id == code.id() {
            if let Some(b) = &self.memo_blocks {
                block::note_block_run(false);
                return Arc::clone(b);
            }
        }
        let key = code.content_key();
        let b = match self.blocks.get(&key) {
            Some(b) => {
                block::note_block_run(false);
                Arc::clone(b)
            }
            None => {
                self.backend_stats.compile_misses += 1;
                block::note_block_run(true);
                let shift = block::icache_line_shift(&self.mem);
                let b = Arc::new(CompiledBlocks::compile(code, decoded, shift));
                self.blocks.insert(key, Arc::clone(&b));
                b
            }
        };
        // `decoded` ran first in every run path, so the memo already names
        // this code object; attach the blocks to it.
        if self.memo_code_id == code.id() {
            self.memo_blocks = Some(Arc::clone(&b));
        }
        b
    }

    /// Runs `code` like [`Machine::run`], invoking `trace` before each
    /// bundle issues with `(cycle, pc, bundle)` — an execution trace for
    /// debugging and teaching.
    ///
    /// # Errors
    ///
    /// As for [`Machine::run`].
    pub fn run_traced(
        &mut self,
        code: &Code,
        mut trace: impl FnMut(u64, usize, &rvliw_isa::Bundle),
    ) -> Result<RunSummary, SimError> {
        let decoded = self.decoded(code);
        self.run_inner(code, &decoded, Some(&mut trace), &mut NullTracer)
    }

    /// Runs `code` from its first bundle until `halt`.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] on runaway, [`SimError::FellOffEnd`] when
    /// the program counter leaves the program, [`SimError::Rfu`] on an RFU
    /// protocol violation.
    pub fn run(&mut self, code: &Code) -> Result<RunSummary, SimError> {
        let decoded = self.decoded(code);
        self.run_inner(code, &decoded, None, &mut NullTracer)
    }

    /// Runs `code` like [`Machine::run`], emitting structured trace events
    /// (bundle issues, stall causes, cache traffic, RFU pipeline activity)
    /// into `tracer`.
    ///
    /// The issue loop is generic over the tracer type, so a
    /// [`NullTracer`] monomorphizes to exactly the untraced loop — tracing
    /// is zero-cost when disabled.
    ///
    /// # Errors
    ///
    /// As for [`Machine::run`].
    pub fn run_with_tracer<T: Tracer + ?Sized>(
        &mut self,
        code: &Code,
        tracer: &mut T,
    ) -> Result<RunSummary, SimError> {
        let decoded = self.decoded(code);
        self.run_inner(code, &decoded, None, tracer)
    }

    /// Runs `code` with both a per-bundle hook (as in
    /// [`Machine::run_traced`]) and a structured event sink (as in
    /// [`Machine::run_with_tracer`]).
    ///
    /// # Errors
    ///
    /// As for [`Machine::run`].
    pub fn run_traced_with_tracer<T: Tracer + ?Sized>(
        &mut self,
        code: &Code,
        mut trace: impl FnMut(u64, usize, &rvliw_isa::Bundle),
        tracer: &mut T,
    ) -> Result<RunSummary, SimError> {
        let decoded = self.decoded(code);
        self.run_inner(code, &decoded, Some(&mut trace), tracer)
    }

    fn run_inner<T: Tracer + ?Sized>(
        &mut self,
        code: &Code,
        decoded: &DecodedCode,
        trace: Option<TraceHook<'_>>,
        tracer: &mut T,
    ) -> Result<RunSummary, SimError> {
        let before = self.snapshot();
        let limit = self.cycle + self.cycle_limit;
        let mut pc = 0usize;
        // Backend dispatch: block-compiled execution requires an
        // observation-free run — no per-bundle trace hook, a null tracer
        // and no armed fault injection — because compiled blocks do not
        // replay per-access events for observers, and is only compiled
        // for the VLIW issue policy (on other substrates a requested
        // block backend cleanly falls back to the interpreter). When a
        // control transfer lands mid-block (a computed `return` target),
        // block execution hands the current pc back and the interpreter
        // continues the same run below.
        if self.cfg.substrate == Substrate::Vliw4
            && self.backend != ExecBackend::Interpreter
            && trace.is_none()
            && tracer.is_null()
            && self.fault_inert
        {
            let blocks = self.compiled_blocks(code, decoded);
            match block::run_blocks(self, &blocks, limit)? {
                BlockExit::Halted => {
                    self.stats.cycles = self.cycle;
                    return Ok(self.snapshot().since(&before));
                }
                BlockExit::Fallback(p) => {
                    pc = p;
                    self.backend_stats.fallbacks += 1;
                    block::note_fallback();
                }
            }
        } else {
            self.backend_stats.interp_runs += 1;
            block::note_interp_run();
        }
        // The interpreter proper: the fetch → scoreboard → issue → retire
        // driver, monomorphized per substrate (see [`crate::substrate`]).
        match self.cfg.substrate {
            Substrate::Vliw4 => {
                substrate::run_decoded::<VliwCore, T>(
                    self, code, decoded, trace, tracer, limit, pc,
                )?;
            }
            Substrate::ScalarInOrder => {
                substrate::run_decoded::<ScalarCore, T>(
                    self, code, decoded, trace, tracer, limit, pc,
                )?;
            }
        }
        self.stats.cycles = self.cycle;
        Ok(self.snapshot().since(&before))
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_op<T: Tracer + ?Sized>(
        &mut self,
        op: &DecodedOp,
        srcs: &[u32],
        writes: &mut [(Dest, u32, u64); MAX_ISSUE],
        nwrites: &mut usize,
        next_pc: &mut Option<usize>,
        halted: &mut bool,
        pc: usize,
        tracer: &mut T,
    ) -> Result<(), SimError> {
        let push = |writes: &mut [(Dest, u32, u64); MAX_ISSUE],
                    nwrites: &mut usize,
                    w: (Dest, u32, u64)| {
            writes[*nwrites] = w;
            *nwrites += 1;
        };
        let lat = op.lat;
        match op.kind {
            ExecKind::Pure(f) => {
                let value = f(srcs);
                push(writes, nwrites, (op.dest, value, self.cycle + lat));
            }
            ExecKind::Load { size, sext_from } => {
                let addr = srcs[0].wrapping_add(srcs.get(1).copied().unwrap_or(0));
                let acc = self.mem.read_traced(addr, size, self.cycle, tracer)?;
                if acc.stall > 0 {
                    tracer.stall(self.cycle, pc, StallCause::DCache, acc.stall);
                }
                // Whole-machine stall on a miss.
                self.cycle += acc.stall;
                let value = match sext_from {
                    16 => acc.value as u16 as i16 as i32 as u32,
                    8 => acc.value as u8 as i8 as i32 as u32,
                    _ => acc.value,
                };
                push(writes, nwrites, (op.dest, value, self.cycle + lat));
            }
            ExecKind::Store { size } => {
                let value = srcs[0];
                let addr = srcs[1].wrapping_add(srcs.get(2).copied().unwrap_or(0));
                let acc = self
                    .mem
                    .write_traced(addr, size, value, self.cycle, tracer)?;
                if acc.stall > 0 {
                    tracer.stall(self.cycle, pc, StallCause::DCache, acc.stall);
                }
                self.cycle += acc.stall;
            }
            ExecKind::Pft => {
                let addr = srcs[0].wrapping_add(srcs.get(1).copied().unwrap_or(0));
                let _ = self.mem.prefetch_traced(addr, self.cycle, tracer);
            }
            ExecKind::BrCond { on_true, target } => {
                let cond = srcs[0] != 0;
                if cond == on_true {
                    let t = target.ok_or(SimError::UnresolvedTarget { pc })?;
                    *next_pc = Some(t as usize);
                }
            }
            ExecKind::Goto { target } => {
                let t = target.ok_or(SimError::UnresolvedTarget { pc })?;
                *next_pc = Some(t as usize);
            }
            ExecKind::Call { target } => {
                push(
                    writes,
                    nwrites,
                    (Dest::Gpr(Gpr::LINK), (pc + 1) as u32, self.cycle + 1),
                );
                let t = target.ok_or(SimError::UnresolvedTarget { pc })?;
                *next_pc = Some(t as usize);
            }
            ExecKind::Ret => {
                let target = srcs.first().copied().unwrap_or_else(|| self.gpr(Gpr::LINK));
                *next_pc = Some(target as usize);
            }
            ExecKind::Halt => *halted = true,
            ExecKind::Nop => {}
            ExecKind::RfuInit(cfg) => {
                let penalty = self
                    .rfu
                    .init_traced(cfg, self.cycle, tracer)
                    .map_err(|e| SimError::Rfu(e.to_string()))?;
                if penalty > 0 {
                    tracer.stall(self.cycle, pc, StallCause::Reconfig, penalty);
                }
                self.cycle += penalty;
            }
            ExecKind::RfuSend(cfg) => {
                self.rfu
                    .send_traced(cfg, srcs, self.cycle, tracer)
                    .map_err(|e| SimError::Rfu(e.to_string()))?;
            }
            ExecKind::RfuExec(cfg) => {
                let out = self
                    .rfu
                    .exec_traced(cfg, srcs, &mut self.mem, self.cycle, tracer)
                    .map_err(|e| SimError::Rfu(e.to_string()))?;
                if out.stall > 0 {
                    tracer.stall(self.cycle, pc, StallCause::RfuLoop, out.stall);
                }
                // Memory stalls freeze the whole machine, as usual.
                self.cycle += out.stall;
                let ready = self.cycle + out.busy.max(lat);
                self.rfu_busy_until = ready;
                push(writes, nwrites, (op.dest, out.value, ready));
            }
            ExecKind::RfuPref(cfg) => {
                let addr = srcs[0];
                self.rfu
                    .pref_traced(cfg, addr, &mut self.mem, self.cycle, tracer)
                    .map_err(|e| SimError::Rfu(e.to_string()))?;
            }
            ExecKind::Undecodable { what } => return Err(SimError::Undecodable { what }),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvliw_asm::Builder;
    use rvliw_isa::Br;

    fn compile(b: Builder) -> Code {
        rvliw_asm::schedule_st200(&b.build()).unwrap()
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut b = Builder::new("t");
        b.movi(Gpr::new(1), 20);
        b.addi(Gpr::new(2), Gpr::new(1), 22);
        b.halt();
        let mut m = Machine::st200();
        let sum = m.run(&compile(b)).unwrap();
        assert_eq!(m.gpr(Gpr::new(2)), 42);
        assert!(sum.cycles >= 2);
    }

    #[test]
    fn r0_reads_zero_and_discards_writes() {
        let mut b = Builder::new("t");
        b.movi(Gpr::ZERO, 99);
        b.add(Gpr::new(1), Gpr::ZERO, 5);
        b.halt();
        let mut m = Machine::st200();
        m.run(&compile(b)).unwrap();
        assert_eq!(m.gpr(Gpr::ZERO), 0);
        assert_eq!(m.gpr(Gpr::new(1)), 5);
    }

    #[test]
    fn loop_sums_correctly() {
        // acc = 1 + 2 + ... + 10
        let mut b = Builder::new("t");
        let (i, acc) = (Gpr::new(1), Gpr::new(2));
        let c = Br::new(0);
        b.movi(i, 10);
        b.movi(acc, 0);
        let top = b.label();
        b.bind(top);
        b.add(acc, acc, i);
        b.subi(i, i, 1);
        b.cmpne_br(c, i, 0);
        b.br(c, top);
        b.halt();
        let mut m = Machine::st200();
        m.run(&compile(b)).unwrap();
        assert_eq!(m.gpr(acc), 55);
    }

    #[test]
    fn load_store_roundtrip_through_cache() {
        let mut m = Machine::st200();
        let buf = m.mem.ram.alloc(64, 32);
        let mut b = Builder::new("t");
        let (a, v, out) = (Gpr::new(1), Gpr::new(2), Gpr::new(3));
        b.movi(a, buf as i32);
        b.movi(v, 1234);
        b.stw(v, a, 8);
        b.ldw(out, a, 8);
        b.halt();
        m.run(&compile(b)).unwrap();
        assert_eq!(m.gpr(out), 1234);
        assert_eq!(m.mem.ram.load32(buf + 8), 1234);
    }

    #[test]
    fn interlock_counts_load_use_delay() {
        let mut m = Machine::st200();
        let buf = m.mem.ram.alloc(64, 32);
        // Warm the line first.
        let _ = m.mem.read(buf, 4, 0);
        let mut b = Builder::new("t");
        b.movi(Gpr::new(1), buf as i32);
        b.ldw(Gpr::new(2), Gpr::new(1), 0);
        b.addi(Gpr::new(3), Gpr::new(2), 1);
        b.halt();
        let sum = m.run(&compile(b)).unwrap();
        // The scheduler already separated the load and its use by the
        // latency, so no interlock stall should remain.
        assert_eq!(sum.stats.interlock_stalls, 0);
    }

    #[test]
    fn dcache_miss_stalls_whole_machine() {
        let mut m = Machine::st200();
        let buf = m.mem.ram.alloc(4096, 32);
        let mut b = Builder::new("t");
        b.movi(Gpr::new(1), buf as i32);
        b.ldw(Gpr::new(2), Gpr::new(1), 0);
        b.halt();
        let sum = m.run(&compile(b)).unwrap();
        assert!(sum.mem.d_misses >= 1);
        assert!(sum.mem.d_stall_cycles >= m.mem.config().fill_latency);
        assert!(sum.cycles > 5);
    }

    #[test]
    fn call_and_return() {
        let mut b = Builder::new("t");
        let f = b.label();
        let (x, y) = (Gpr::new(16), Gpr::new(17));
        b.movi(x, 7);
        b.call(f);
        // after return:
        b.addi(y, x, 1); // x was doubled by callee
        b.halt();
        b.bind(f);
        b.add(x, x, x);
        b.ret();
        let mut m = Machine::st200();
        m.run(&compile(b)).unwrap();
        assert_eq!(m.gpr(x), 14);
        assert_eq!(m.gpr(y), 15);
    }

    #[test]
    fn cycle_limit_catches_runaway() {
        let mut b = Builder::new("t");
        let top = b.label();
        b.bind(top);
        b.goto(top);
        b.halt();
        let mut m = Machine::st200();
        m.cycle_limit = 1000;
        let err = m.run(&compile(b)).unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { .. }));
    }

    #[test]
    fn state_persists_across_runs() {
        let mut m = Machine::st200();
        let buf = m.mem.ram.alloc(64, 32);
        let mut b1 = Builder::new("w");
        b1.movi(Gpr::new(1), buf as i32);
        b1.movi(Gpr::new(2), 7);
        b1.stw(Gpr::new(2), Gpr::new(1), 0);
        b1.halt();
        m.run(&compile(b1)).unwrap();
        let c1 = m.cycle();
        let mut b2 = Builder::new("r");
        b2.movi(Gpr::new(1), buf as i32);
        b2.ldw(Gpr::new(3), Gpr::new(1), 0);
        b2.halt();
        let sum2 = m.run(&compile(b2)).unwrap();
        assert_eq!(m.gpr(Gpr::new(3)), 7);
        assert!(m.cycle() > c1);
        // Line already resident from the store: no new data miss.
        assert_eq!(sum2.mem.d_misses, 0);
    }

    #[test]
    fn wide_issue_machines_execute_full_bundles() {
        // Regression: bundles wider than the default 4-issue must not drop
        // operations (the scratch arrays are sized by MAX_ISSUE, not by
        // the default configuration).
        let cfg = MachineConfig {
            issue_width: 8,
            num_alus: 8,
            num_muls: 4,
            num_mem_units: 2,
            ..MachineConfig::st200()
        };
        let mut b = Builder::new("wide");
        for i in 1..9u8 {
            b.movi(Gpr::new(i), i32::from(i) * 11);
        }
        b.halt();
        let code = rvliw_asm::schedule(&b.build(), &cfg).unwrap();
        // All eight moves must land in one bundle on this machine.
        assert_eq!(code.bundles()[0].ops().len(), 8);
        let mut m = Machine::new(cfg, rvliw_mem::MemConfig::st200());
        m.run(&code).unwrap();
        for i in 1..9u8 {
            assert_eq!(m.gpr(Gpr::new(i)), u32::from(i) * 11, "reg {i}");
        }
    }

    #[test]
    fn decoded_cache_is_content_addressed() {
        // Regression: the pre-decode cache used to key on `Code::id` — a
        // process-unique counter — so two separately scheduled but
        // identical programs each got their own lowering (and, had the key
        // ever been a content hash of insufficient width, could have
        // collided). Content-address keying dedups identical programs and
        // keeps distinct ones apart.
        let mk = || {
            let mut b = Builder::new("same");
            b.movi(Gpr::new(1), 20);
            b.addi(Gpr::new(2), Gpr::new(1), 22);
            b.halt();
            compile(b)
        };
        let (a, b) = (mk(), mk());
        assert_ne!(a.id(), b.id(), "separately scheduled: distinct ids");
        let mut m = Machine::st200();
        let da = m.decoded(&a);
        let db = m.decoded(&b);
        assert!(Arc::ptr_eq(&da, &db), "identical programs share a lowering");
        assert_eq!(m.decoded.len(), 1);
        let mut c = Builder::new("same");
        c.movi(Gpr::new(1), 21); // differs by one immediate
        c.halt();
        let dc = m.decoded(&compile(c));
        assert!(!Arc::ptr_eq(&da, &dc));
        assert_eq!(m.decoded.len(), 2);
    }

    #[test]
    fn fell_off_end_detected() {
        let mut b = Builder::new("t");
        b.movi(Gpr::new(1), 1);
        // no halt
        let code = compile(b);
        let mut m = Machine::st200();
        let err = m.run(&code).unwrap_err();
        assert!(matches!(err, SimError::FellOffEnd { .. }));
    }

    fn scalar_machine() -> Machine {
        Machine::new(
            MachineConfig::st200().with_substrate(Substrate::ScalarInOrder),
            MemConfig::st200(),
        )
    }

    #[test]
    fn scalar_substrate_matches_vliw_architecturally_but_not_in_cycles() {
        let build = || {
            let mut b = Builder::new("t");
            let (i, acc) = (Gpr::new(1), Gpr::new(2));
            let c = Br::new(0);
            b.movi(i, 10);
            b.movi(acc, 0);
            let top = b.label();
            b.bind(top);
            b.add(acc, acc, i);
            b.subi(i, i, 1);
            b.cmpne_br(c, i, 0);
            b.br(c, top);
            b.halt();
            compile(b)
        };
        let mut vliw = Machine::st200();
        let mut scalar = scalar_machine();
        let sv = vliw.run(&build()).unwrap();
        let ss = scalar.run(&build()).unwrap();
        assert_eq!(vliw.gpr(Gpr::new(2)), 55);
        assert_eq!(scalar.gpr(Gpr::new(2)), 55);
        assert_eq!(sv.stats.ops, ss.stats.ops);
        assert_eq!(sv.stats.bundles, ss.stats.bundles);
        assert!(
            ss.cycles > sv.cycles,
            "one-issue pipe must be slower: scalar {} vs vliw {}",
            ss.cycles,
            sv.cycles
        );
    }

    #[test]
    fn block_backend_on_scalar_falls_back_to_interpreter() {
        // Satellite: a requested block-compiled backend on the scalar
        // substrate must cleanly refuse — run on the interpreter, never
        // touch the block compiler — and still produce the same results.
        let build = || {
            let mut b = Builder::new("t");
            b.movi(Gpr::new(1), 20);
            b.addi(Gpr::new(2), Gpr::new(1), 22);
            b.halt();
            compile(b)
        };
        let mut blocked = scalar_machine();
        blocked.backend = ExecBackend::BlockCompiled;
        let sb = blocked.run(&build()).unwrap();
        assert_eq!(blocked.gpr(Gpr::new(2)), 42);
        let bs = blocked.backend_stats();
        assert_eq!(bs.block_runs, 0, "block path must not engage: {bs:?}");
        assert_eq!(bs.compile_lookups, 0);
        assert_eq!(bs.interp_runs, 1);
        let mut interp = scalar_machine();
        interp.backend = ExecBackend::Interpreter;
        let si = interp.run(&build()).unwrap();
        assert_eq!(sb, si, "fallback must not change any counter");
    }

    #[test]
    fn ipc_reported() {
        let mut b = Builder::new("t");
        for i in 1..9 {
            b.movi(Gpr::new(i), i32::from(i));
        }
        b.halt();
        let code = compile(b);
        let mut m = Machine::st200();
        let cold = m.run(&code).unwrap();
        assert!(
            cold.stats.ifetch_stall_cycles > 0,
            "first pass fetches code"
        );
        let warm = m.run(&code).unwrap();
        assert_eq!(warm.stats.ifetch_stall_cycles, 0);
        assert!(warm.stats.ipc() > 1.0, "warm ipc {}", warm.stats.ipc());
    }
}
