#![warn(missing_docs)]
//! # rvliw-asm
//!
//! Program construction and instruction scheduling for the rvliw ISA.
//!
//! The paper compiles its benchmark with the ST200 production compiler
//! (Multiflow-derived, aggressive ILP scheduling). This crate is the
//! reproduction's stand-in for that toolchain:
//!
//! * [`Builder`] — an embedded assembler DSL that emits *sequential*
//!   operations into labelled basic blocks;
//! * [`schedule`] — a resource-constrained **list scheduler** that packs the
//!   sequential operations of each block into 4-issue VLIW bundles,
//!   honouring data dependences, operation latencies and the per-cycle
//!   functional-unit mix of the ST200 (4 ALU / 2 MUL / 1 LSU / 1 BR / 1 RFU);
//! * [`Code`] — the scheduled artifact executed by `rvliw-sim`.
//!
//! ```
//! use rvliw_asm::Builder;
//! use rvliw_isa::{Gpr, MachineConfig};
//!
//! let mut b = Builder::new("axpy");
//! let (x, y, z) = (Gpr::new(1), Gpr::new(2), Gpr::new(3));
//! b.movi(x, 6);
//! b.movi(y, 7);
//! b.mul(z, x, y);
//! b.halt();
//! let code = rvliw_asm::schedule(&b.build(), &MachineConfig::st200()).unwrap();
//! assert!(code.bundles().len() >= 2); // mul depends on both moves
//! ```

pub mod builder;
pub mod code;
pub mod parse;
pub mod program;
pub mod sched;

pub use builder::Builder;
pub use code::{Code, CodeKey};
pub use parse::{parse_program, ParseError};
pub use program::{Block, Label, Program, ProgramError};
pub use sched::{schedule, ScheduleError};

/// Convenience alias: schedule with the default ST200 configuration.
///
/// # Errors
///
/// See [`schedule`].
pub fn schedule_st200(program: &Program) -> Result<Code, ScheduleError> {
    schedule(program, &rvliw_isa::MachineConfig::st200())
}
