//! The embedded assembler DSL.

use rvliw_isa::{Br, Dest, Gpr, Op, Opcode, Src};

use crate::program::{Block, Label, Program};

/// Incrementally builds a [`Program`] from sequential operations.
///
/// Blocks are created by [`Builder::bind`]ing labels obtained from
/// [`Builder::label`]. When a new block starts while the current one does not
/// end in control flow, an explicit `goto` fall-through is inserted so every
/// block is control-flow terminated (a property the scheduler relies on).
///
/// ```
/// use rvliw_asm::Builder;
/// use rvliw_isa::{Br, Gpr};
///
/// // for (i = 3; i != 0; i--) acc += i;
/// let mut b = Builder::new("sum");
/// let (i, acc) = (Gpr::new(1), Gpr::new(2));
/// let cond = Br::new(0);
/// b.movi(i, 3);
/// b.movi(acc, 0);
/// let loop_top = b.label();
/// b.bind(loop_top);
/// b.add(acc, acc, i);
/// b.subi(i, i, 1);
/// b.cmpne_br(cond, i, 0);
/// b.br(cond, loop_top);
/// b.halt();
/// let program = b.build();
/// assert!(program.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct Builder {
    name: String,
    finished: Vec<Block>,
    current: Block,
    next_label: u32,
}

impl Builder {
    /// Starts a program; an entry block is opened implicitly.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Builder {
            name: name.into(),
            finished: Vec::new(),
            current: Block {
                label: Label(0),
                ops: Vec::new(),
            },
            next_label: 1,
        }
    }

    /// Reserves a fresh label (not yet bound to a block).
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Starts a new block at `label`. If the current block does not end in a
    /// control-flow operation, a fall-through `goto label` is appended first.
    pub fn bind(&mut self, label: Label) {
        let falls_through = self
            .current
            .ops
            .last()
            .is_none_or(|op| !op.opcode.is_control());
        if falls_through {
            self.current
                .ops
                .push(Op::new(Opcode::Goto, Dest::None, &[]).with_target(label.0));
        }
        let done = std::mem::replace(
            &mut self.current,
            Block {
                label,
                ops: Vec::new(),
            },
        );
        self.finished.push(done);
    }

    /// Appends a raw operation to the current block.
    pub fn op(&mut self, op: Op) {
        self.current.ops.push(op);
    }

    /// Finishes the program.
    #[must_use]
    pub fn build(mut self) -> Program {
        self.finished.push(self.current);
        Program {
            name: self.name,
            blocks: self.finished,
        }
    }

    // ---- three-register / register-immediate helpers ---------------------

    fn rrx(&mut self, opc: Opcode, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.op(Op::new(opc, rd.into(), &[rs1.into(), rs2.into()]));
    }

    /// `rd = rs1 + rs2|imm`
    pub fn add(&mut self, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.rrx(Opcode::Add, rd, rs1, rs2);
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Gpr, rs1: Gpr, imm: i32) {
        self.rrx(Opcode::Add, rd, rs1, imm);
    }

    /// `rd = rs1 - rs2|imm`
    pub fn sub(&mut self, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.rrx(Opcode::Sub, rd, rs1, rs2);
    }

    /// `rd = rs1 - imm`
    pub fn subi(&mut self, rd: Gpr, rs1: Gpr, imm: i32) {
        self.rrx(Opcode::Sub, rd, rs1, imm);
    }

    /// `rd = rs1 & rs2|imm`
    pub fn and(&mut self, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.rrx(Opcode::And, rd, rs1, rs2);
    }

    /// `rd = rs1 | rs2|imm`
    pub fn or(&mut self, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.rrx(Opcode::Or, rd, rs1, rs2);
    }

    /// `rd = rs1 ^ rs2|imm`
    pub fn xor(&mut self, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.rrx(Opcode::Xor, rd, rs1, rs2);
    }

    /// `rd = rs1 << rs2|imm` (≥32 yields 0)
    pub fn sll(&mut self, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.rrx(Opcode::Sll, rd, rs1, rs2);
    }

    /// `rd = rs1 >> rs2|imm` logical
    pub fn srl(&mut self, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.rrx(Opcode::Srl, rd, rs1, rs2);
    }

    /// `rd = rs1 >> rs2|imm` arithmetic
    pub fn sra(&mut self, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.rrx(Opcode::Sra, rd, rs1, rs2);
    }

    /// `rd = min(rs1, rs2)` signed
    pub fn min(&mut self, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.rrx(Opcode::Min, rd, rs1, rs2);
    }

    /// `rd = max(rs1, rs2)` signed
    pub fn max(&mut self, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.rrx(Opcode::Max, rd, rs1, rs2);
    }

    /// `rd = rs`
    pub fn mov(&mut self, rd: Gpr, rs: Gpr) {
        self.op(Op::new(Opcode::Mov, rd.into(), &[rs.into()]));
    }

    /// `rd = imm`
    pub fn movi(&mut self, rd: Gpr, imm: i32) {
        self.op(Op::new(Opcode::Mov, rd.into(), &[imm.into()]));
    }

    /// `rd = rs1 * rs2|imm` (multiplier unit)
    pub fn mul(&mut self, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.rrx(Opcode::Mul, rd, rs1, rs2);
    }

    /// `rd = byte<lane>(rs)` zero-extended
    pub fn extbu(&mut self, rd: Gpr, rs: Gpr, lane: i32) {
        self.rrx(Opcode::Extbu, rd, rs, lane);
    }

    /// `rd = rs1 with byte<lane> := low8(rs2)`
    pub fn insb(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr, lane: i32) {
        self.op(Op::new(
            Opcode::Insb,
            rd.into(),
            &[rs1.into(), rs2.into(), lane.into()],
        ));
    }

    /// `rd = b ? rs1 : rs2`
    pub fn slct(&mut self, rd: Gpr, b: Br, rs1: Gpr, rs2: impl Into<Src>) {
        self.op(Op::new(
            Opcode::Slct,
            rd.into(),
            &[b.into(), rs1.into(), rs2.into()],
        ));
    }

    // ---- comparisons ------------------------------------------------------

    /// `bd = (rs1 < rs2|imm)` signed, into a branch register
    pub fn cmplt_br(&mut self, bd: Br, rs1: Gpr, rs2: impl Into<Src>) {
        self.op(Op::new(Opcode::CmpLt, bd.into(), &[rs1.into(), rs2.into()]));
    }

    /// `bd = (rs1 != rs2|imm)`, into a branch register
    pub fn cmpne_br(&mut self, bd: Br, rs1: Gpr, rs2: impl Into<Src>) {
        self.op(Op::new(Opcode::CmpNe, bd.into(), &[rs1.into(), rs2.into()]));
    }

    /// `bd = (rs1 == rs2|imm)`, into a branch register
    pub fn cmpeq_br(&mut self, bd: Br, rs1: Gpr, rs2: impl Into<Src>) {
        self.op(Op::new(Opcode::CmpEq, bd.into(), &[rs1.into(), rs2.into()]));
    }

    /// `bd = (rs1 < rs2|imm)` unsigned, into a branch register
    pub fn cmpltu_br(&mut self, bd: Br, rs1: Gpr, rs2: impl Into<Src>) {
        self.op(Op::new(
            Opcode::CmpLtu,
            bd.into(),
            &[rs1.into(), rs2.into()],
        ));
    }

    /// `rd = (rs1 < rs2|imm)` signed, into a GPR
    pub fn cmplt(&mut self, rd: Gpr, rs1: Gpr, rs2: impl Into<Src>) {
        self.rrx(Opcode::CmpLt, rd, rs1, rs2);
    }

    // ---- SIMD subset -------------------------------------------------------

    /// per-byte rounded average `(a+b+1)>>1`
    pub fn avg4r(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.op(Op::rrr(Opcode::Avg4r, rd, rs1, rs2));
    }

    /// per-byte floor average `(a+b)>>1`
    pub fn avg4(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.op(Op::rrr(Opcode::Avg4, rd, rs1, rs2));
    }

    /// scalar sum of per-byte absolute differences
    pub fn sad4(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) {
        self.op(Op::rrr(Opcode::Sad4, rd, rs1, rs2));
    }

    // ---- memory -------------------------------------------------------------

    /// `rd = mem32[base + off]`
    pub fn ldw(&mut self, rd: Gpr, base: Gpr, off: i32) {
        self.op(Op::new(Opcode::Ldw, rd.into(), &[base.into(), off.into()]));
    }

    /// `rd = zext(mem8[base + off])`
    pub fn ldbu(&mut self, rd: Gpr, base: Gpr, off: i32) {
        self.op(Op::new(Opcode::Ldbu, rd.into(), &[base.into(), off.into()]));
    }

    /// `mem32[base + off] = rs`
    pub fn stw(&mut self, rs: Gpr, base: Gpr, off: i32) {
        self.op(Op::new(
            Opcode::Stw,
            Dest::None,
            &[rs.into(), base.into(), off.into()],
        ));
    }

    /// `mem8[base + off] = low8(rs)`
    pub fn stb(&mut self, rs: Gpr, base: Gpr, off: i32) {
        self.op(Op::new(
            Opcode::Stb,
            Dest::None,
            &[rs.into(), base.into(), off.into()],
        ));
    }

    /// Software prefetch of the line containing `base + off`.
    pub fn pft(&mut self, base: Gpr, off: i32) {
        self.op(Op::new(Opcode::Pft, Dest::None, &[base.into(), off.into()]));
    }

    // ---- control flow --------------------------------------------------------

    /// Conditional branch to `target` when `b` is true. Opens a fall-through
    /// block for the not-taken path.
    pub fn br(&mut self, b: Br, target: Label) {
        self.op(Op::new(Opcode::BrT, Dest::None, &[b.into()]).with_target(target.0));
        let cont = self.label();
        self.bind(cont);
    }

    /// Conditional branch to `target` when `b` is false.
    pub fn brf(&mut self, b: Br, target: Label) {
        self.op(Op::new(Opcode::BrF, Dest::None, &[b.into()]).with_target(target.0));
        let cont = self.label();
        self.bind(cont);
    }

    /// Unconditional jump.
    pub fn goto(&mut self, target: Label) {
        self.op(Op::new(Opcode::Goto, Dest::None, &[]).with_target(target.0));
        let cont = self.label();
        self.bind(cont);
    }

    /// Call the block at `target`; the return address lands in `$r63`.
    pub fn call(&mut self, target: Label) {
        self.op(Op::new(Opcode::Call, Dest::None, &[]).with_target(target.0));
        let cont = self.label();
        self.bind(cont);
    }

    /// Return through `$r63`.
    pub fn ret(&mut self) {
        self.op(Op::new(Opcode::Ret, Dest::None, &[]));
        let cont = self.label();
        self.bind(cont);
    }

    /// Stop the simulation.
    pub fn halt(&mut self) {
        self.op(Op::new(Opcode::Halt, Dest::None, &[]));
        let cont = self.label();
        self.bind(cont);
    }

    // ---- RFU custom instructions ----------------------------------------------

    /// `RFUINIT(#cfg)`
    pub fn rfu_init(&mut self, cfg: u16) {
        self.op(Op::new(Opcode::RfuInit, Dest::None, &[]).with_cfg(cfg));
    }

    /// `RFUSEND(#cfg, srcs…)` — up to two explicit operands per send on the
    /// 64-bit RFU input port.
    pub fn rfu_send(&mut self, cfg: u16, srcs: &[Gpr]) {
        assert!(srcs.len() <= 2, "rfusend carries at most two operands");
        let srcs: Vec<Src> = srcs.iter().map(|&r| r.into()).collect();
        self.op(Op::new(Opcode::RfuSend, Dest::None, &srcs).with_cfg(cfg));
    }

    /// `rd = RFUEXEC(#cfg, srcs…)`
    pub fn rfu_exec(&mut self, cfg: u16, rd: Gpr, srcs: &[Src]) {
        self.op(Op::new(Opcode::RfuExec, rd.into(), srcs).with_cfg(cfg));
    }

    /// Custom macroblock prefetch (pattern selected by `cfg`).
    pub fn rfu_pref(&mut self, cfg: u16, addr: Gpr) {
        self.op(Op::new(Opcode::RfuPref, Dest::None, &[addr.into()]).with_cfg(cfg));
    }

    /// Long-latency kernel-loop instruction.
    pub fn rfu_loop(&mut self, cfg: u16, rd: Gpr, srcs: &[Src]) {
        self.op(Op::new(Opcode::RfuLoop, rd.into(), srcs).with_cfg(cfg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_single_block() {
        let mut b = Builder::new("t");
        b.movi(Gpr::new(1), 5);
        b.addi(Gpr::new(2), Gpr::new(1), 1);
        b.halt();
        let p = b.build();
        assert!(p.validate().is_ok());
        // halt opens a trailing (empty) continuation block.
        assert_eq!(p.blocks.len(), 2);
        assert_eq!(p.blocks[0].ops.len(), 3);
    }

    #[test]
    fn bind_inserts_fallthrough_goto() {
        let mut b = Builder::new("t");
        b.movi(Gpr::new(1), 5);
        let l = b.label();
        b.bind(l);
        b.halt();
        let p = b.build();
        let first = &p.blocks[0];
        let last_op = first.ops.last().unwrap();
        assert_eq!(last_op.opcode, Opcode::Goto);
        assert_eq!(last_op.target, Some(l.0));
    }

    #[test]
    fn loop_structure_validates() {
        let mut b = Builder::new("loop");
        let i = Gpr::new(1);
        let c = Br::new(0);
        b.movi(i, 4);
        let top = b.label();
        b.bind(top);
        b.subi(i, i, 1);
        b.cmpne_br(c, i, 0);
        b.br(c, top);
        b.halt();
        let p = b.build();
        p.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn rfu_send_limits_operands() {
        let mut b = Builder::new("t");
        b.rfu_send(0, &[Gpr::new(1), Gpr::new(2), Gpr::new(3)]);
    }

    #[test]
    fn labels_are_unique() {
        let mut b = Builder::new("t");
        let l1 = b.label();
        let l2 = b.label();
        assert_ne!(l1, l2);
    }
}
