//! Unscheduled programs: labelled basic blocks of sequential operations.

use std::collections::HashSet;
use std::fmt;

use rvliw_isa::Op;

/// A branch-target label, unique within one [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub(crate) u32);

impl Label {
    /// The numeric id of this label.
    #[must_use]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A basic block: a label and the *sequential* operations bound to it.
///
/// Sequential semantics: each operation conceptually executes after the
/// previous one; the scheduler recovers the parallelism.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The block's entry label.
    pub label: Label,
    /// Sequential operations; at most the last one is control flow.
    pub ops: Vec<Op>,
}

/// An unscheduled program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Human-readable name (used in disassembly and statistics).
    pub name: String,
    /// Basic blocks in layout order; execution enters at the first block.
    pub blocks: Vec<Block>,
}

/// Structural errors detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A control-flow operation references a label with no bound block.
    UndefinedLabel(Label),
    /// Two blocks bound to the same label.
    DuplicateLabel(Label),
    /// A control-flow operation appears before the end of a block.
    ControlNotLast {
        /// The offending block.
        block: Label,
    },
    /// A branch operation is missing its target label.
    MissingTarget {
        /// The offending block.
        block: Label,
    },
    /// The program has no blocks.
    Empty,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UndefinedLabel(l) => write!(f, "undefined label {l}"),
            ProgramError::DuplicateLabel(l) => write!(f, "duplicate label {l}"),
            ProgramError::ControlNotLast { block } => {
                write!(f, "control-flow op before end of block {block}")
            }
            ProgramError::MissingTarget { block } => {
                write!(f, "branch without target in block {block}")
            }
            ProgramError::Empty => write!(f, "program has no blocks"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Checks structural invariants: unique labels, targets defined, control
    /// flow only at block ends.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.blocks.is_empty() {
            return Err(ProgramError::Empty);
        }
        let mut defined = HashSet::new();
        for b in &self.blocks {
            if !defined.insert(b.label) {
                return Err(ProgramError::DuplicateLabel(b.label));
            }
        }
        for b in &self.blocks {
            for (i, op) in b.ops.iter().enumerate() {
                let is_last = i + 1 == b.ops.len();
                if op.opcode.is_control() && !is_last {
                    return Err(ProgramError::ControlNotLast { block: b.label });
                }
                if op.opcode.is_control() {
                    use rvliw_isa::Opcode::*;
                    match op.opcode {
                        BrT | BrF | Goto | Call => {
                            let t = op
                                .target
                                .ok_or(ProgramError::MissingTarget { block: b.label })?;
                            if !defined.contains(&Label(t)) {
                                return Err(ProgramError::UndefinedLabel(Label(t)));
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        Ok(())
    }

    /// Total number of operations across all blocks.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {}:", self.name)?;
        for b in &self.blocks {
            writeln!(f, "{}:", b.label)?;
            for op in &b.ops {
                writeln!(f, "    {op}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvliw_isa::{Dest, Gpr, Opcode};

    fn block(label: u32, ops: Vec<Op>) -> Block {
        Block {
            label: Label(label),
            ops,
        }
    }

    #[test]
    fn empty_program_invalid() {
        let p = Program {
            name: "p".into(),
            blocks: vec![],
        };
        assert_eq!(p.validate(), Err(ProgramError::Empty));
    }

    #[test]
    fn undefined_target_detected() {
        let goto = Op::new(Opcode::Goto, Dest::None, &[]).with_target(9);
        let p = Program {
            name: "p".into(),
            blocks: vec![block(0, vec![goto])],
        };
        assert_eq!(p.validate(), Err(ProgramError::UndefinedLabel(Label(9))));
    }

    #[test]
    fn control_must_be_last() {
        let goto = Op::new(Opcode::Goto, Dest::None, &[]).with_target(0);
        let add = Op::rrr(Opcode::Add, Gpr::new(1), Gpr::new(2), Gpr::new(3));
        let p = Program {
            name: "p".into(),
            blocks: vec![block(0, vec![goto, add])],
        };
        assert_eq!(
            p.validate(),
            Err(ProgramError::ControlNotLast { block: Label(0) })
        );
    }

    #[test]
    fn duplicate_labels_detected() {
        let halt = Op::new(Opcode::Halt, Dest::None, &[]);
        let p = Program {
            name: "p".into(),
            blocks: vec![block(0, vec![halt]), block(0, vec![halt])],
        };
        assert_eq!(p.validate(), Err(ProgramError::DuplicateLabel(Label(0))));
    }

    #[test]
    fn valid_program_passes() {
        let halt = Op::new(Opcode::Halt, Dest::None, &[]);
        let goto = Op::new(Opcode::Goto, Dest::None, &[]).with_target(1);
        let p = Program {
            name: "p".into(),
            blocks: vec![block(0, vec![goto]), block(1, vec![halt])],
        };
        assert!(p.validate().is_ok());
        assert_eq!(p.num_ops(), 2);
    }
}
