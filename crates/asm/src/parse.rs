//! A text assembler: parses the listing syntax that [`Program`]'s
//! `Display` produces, so programs round-trip through text.
//!
//! Syntax, one operation per line:
//!
//! ```text
//! ; a comment
//! entry:                      ; a label binds the next block
//!     mov $r1 = 10
//!     add $r2 = $r1, 5
//! loop:
//!     sub $r1 = $r1, 1
//!     cmpne $b0 = $r1, 0
//!     br $b0 -> loop
//!     rfuexec#3 $r4 = $r5     ; RFU ops carry a configuration id
//!     halt
//! ```
//!
//! Destinations are introduced by `=`; sources are comma-separated GPRs
//! (`$r0`–`$r63`), branch registers (`$b0`–`$b7`) or decimal/hex
//! immediates; branch targets follow `->`.

use std::collections::HashMap;
use std::fmt;

use rvliw_isa::{Dest, Op, Opcode, Src};

use crate::program::{Block, Label, Program};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn opcode_by_mnemonic(m: &str) -> Option<Opcode> {
    Opcode::all().iter().copied().find(|o| o.mnemonic() == m)
}

fn parse_src(tok: &str, line: usize) -> Result<Src, ParseError> {
    if let Ok(r) = tok.parse::<rvliw_isa::Gpr>() {
        return Ok(Src::Gpr(r));
    }
    if let Ok(b) = tok.parse::<rvliw_isa::Br>() {
        return Ok(Src::Br(b));
    }
    let imm = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("-0x")) {
        i64::from_str_radix(hex, 16)
            .map(|v| if tok.starts_with('-') { -v } else { v })
            .map_err(|_| err(line, format!("bad operand `{tok}`")))?
    } else {
        tok.parse::<i64>()
            .map_err(|_| err(line, format!("bad operand `{tok}`")))?
    };
    i32::try_from(imm)
        .map(Src::Imm)
        .map_err(|_| err(line, format!("immediate `{tok}` out of 32-bit range")))
}

/// Parses an assembly listing into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input or
/// an undefined label.
pub fn parse_program(name: &str, text: &str) -> Result<Program, ParseError> {
    struct PendingOp {
        op: Op,
        target_name: Option<String>,
        line: usize,
    }
    let mut blocks: Vec<(Option<String>, Vec<PendingOp>)> = vec![(None, Vec::new())];
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split(';').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if let Some(label) = code.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line, "malformed label"));
            }
            blocks.push((Some(label.to_owned()), Vec::new()));
            continue;
        }
        // "<mnemonic>[#cfg] [dest =] src, src … [-> target]"
        let (code, target_name) = match code.split_once("->") {
            Some((body, target)) => (body.trim(), Some(target.trim().to_owned())),
            None => (code, None),
        };
        let mut parts = code.splitn(2, char::is_whitespace);
        let head = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("").trim();
        let (mnemonic, cfg) = match head.split_once('#') {
            Some((m, c)) => (
                m,
                Some(
                    c.parse::<u16>()
                        .map_err(|_| err(line, format!("bad configuration id `{c}`")))?,
                ),
            ),
            None => (head, None),
        };
        let opcode = opcode_by_mnemonic(mnemonic)
            .ok_or_else(|| err(line, format!("unknown mnemonic `{mnemonic}`")))?;
        let (dest, srcs_text) = match rest.split_once('=') {
            Some((d, s)) => {
                let d = d.trim();
                let dest = if let Ok(r) = d.parse::<rvliw_isa::Gpr>() {
                    Dest::Gpr(r)
                } else if let Ok(b) = d.parse::<rvliw_isa::Br>() {
                    Dest::Br(b)
                } else {
                    return Err(err(line, format!("bad destination `{d}`")));
                };
                (dest, s.trim())
            }
            None => (Dest::None, rest),
        };
        let mut srcs = Vec::new();
        if !srcs_text.is_empty() {
            for tok in srcs_text.split(',') {
                srcs.push(parse_src(tok.trim(), line)?);
            }
        }
        if srcs.len() > rvliw_isa::MAX_SRCS {
            return Err(err(line, "too many source operands"));
        }
        let mut op = Op::new(opcode, dest, &srcs);
        if let Some(cfg) = cfg {
            op = op.with_cfg(cfg);
        }
        let is_control = op.opcode.is_control();
        blocks
            .last_mut()
            .ok_or_else(|| err(line, "instruction precedes the entry block"))?
            .1
            .push(PendingOp {
                op,
                target_name,
                line,
            });
        if is_control {
            // Control flow ends a basic block; open an anonymous
            // continuation for whatever follows (mirrors `Builder`).
            blocks.push((None, Vec::new()));
        }
    }
    // Drop a trailing empty anonymous block.
    if blocks.len() > 1
        && blocks
            .last()
            .is_some_and(|(n, ops)| n.is_none() && ops.is_empty())
    {
        blocks.pop();
    }

    // Assign label ids in block order; named blocks are also recorded for
    // target resolution.
    let mut label_ids: HashMap<String, u32> = HashMap::new();
    for (i, (name, _)) in blocks.iter().enumerate() {
        if let Some(n) = name {
            label_ids.insert(n.clone(), i as u32);
        }
    }
    let mut out_blocks = Vec::with_capacity(blocks.len());
    for (i, (_, ops)) in blocks.into_iter().enumerate() {
        let label = Label(i as u32);
        let mut resolved = Vec::with_capacity(ops.len());
        for p in ops {
            let mut op = p.op;
            if let Some(t) = p.target_name {
                let id = label_ids
                    .get(&t)
                    .copied()
                    .ok_or_else(|| err(p.line, format!("undefined label `{t}`")))?;
                op = op.with_target(id);
            }
            resolved.push(op);
        }
        out_blocks.push(Block {
            label,
            ops: resolved,
        });
    }
    Ok(Program {
        name: name.to_owned(),
        blocks: out_blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvliw_isa::Gpr;

    #[test]
    fn parses_a_loop() {
        let text = r"
; sum 1..=4
    mov $r1 = 4
    mov $r2 = 0
loop:
    add $r2 = $r2, $r1
    sub $r1 = $r1, 1
    cmpne $b0 = $r1, 0
    br $b0 -> loop
    halt
";
        let p = parse_program("sum", text).unwrap();
        p.validate().unwrap();
        // entry, the loop body (ends at the branch), the halt continuation
        assert_eq!(p.blocks.len(), 3);
        assert_eq!(p.blocks[1].ops.len(), 4);
        assert_eq!(p.blocks[2].ops.len(), 1);
        // And it actually runs: schedule + simulate 1+2+3+4.
        let code = crate::schedule_st200(&p).unwrap();
        assert!(code.bundles().len() >= 4);
    }

    #[test]
    fn parses_rfu_config_ids_and_hex() {
        let p = parse_program("t", "rfusend#3 $r1, $r2\nmov $r1 = 0x10\nhalt\n").unwrap();
        let op = &p.blocks[0].ops[0];
        assert_eq!(op.cfg, Some(3));
        assert_eq!(p.blocks[0].ops[1].srcs()[0], Src::Imm(16));
    }

    #[test]
    fn parses_stores_without_destination() {
        let p = parse_program("t", "stw $r1, $r2, 8\nhalt\n").unwrap();
        let op = &p.blocks[0].ops[0];
        assert_eq!(op.dest, Dest::None);
        assert_eq!(op.srcs().len(), 3);
    }

    #[test]
    fn rejects_unknown_mnemonic_with_line() {
        let e = parse_program("t", "\n\nfrobnicate $r1 = $r2\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_undefined_label() {
        let e = parse_program("t", "goto -> nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn parsed_program_schedules_and_runs_shape() {
        let text = "mov $r1 = 6\nmov $r2 = 7\nmul $r3 = $r1, $r2\nhalt\n";
        let p = parse_program("t", text).unwrap();
        let code = crate::schedule_st200(&p).unwrap();
        assert!(code.bundles().len() >= 2);
    }

    #[test]
    fn display_parse_roundtrip_for_straight_line() {
        let mut b = crate::Builder::new("t");
        b.movi(Gpr::new(1), 42);
        b.addi(Gpr::new(2), Gpr::new(1), -7);
        b.sad4(Gpr::new(3), Gpr::new(1), Gpr::new(2));
        b.halt();
        let p1 = b.build();
        // Render each op and parse it back.
        let text: String = p1.blocks[0].ops.iter().map(|o| format!("{o}\n")).collect();
        let p2 = parse_program("t", &text).unwrap();
        assert_eq!(p1.blocks[0].ops, p2.blocks[0].ops);
    }
}
