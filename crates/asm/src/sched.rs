//! Resource-constrained list scheduling.
//!
//! Each basic block is scheduled independently (the classic compiler model
//! the ST200 toolchain applies before trace-level optimisations):
//!
//! 1. a dependence DAG is built over the block's sequential operations
//!    (register RAW/WAR/WAW, conservative memory ordering, RFU protocol
//!    ordering);
//! 2. operations are placed cycle by cycle, highest critical-path height
//!    first, into [`Bundle`]s that respect the per-cycle functional-unit mix;
//! 3. the control-flow operation (if any) is pinned to the last cycle of the
//!    block.
//!
//! The resulting static schedule length is what the paper calls the
//! compiler-visible latency of a code region.

use std::collections::HashMap;
use std::fmt;

use rvliw_isa::{Bundle, Dest, MachineConfig, Op};

use crate::code::Code;
use crate::program::{Label, Program, ProgramError};

/// Errors produced by [`schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The input program failed [`Program::validate`].
    Invalid(ProgramError),
    /// An operation can never fit a bundle (e.g. wider than the issue
    /// width) — indicates a machine/program mismatch.
    Unschedulable {
        /// Textual rendering of the offending operation.
        op: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Invalid(e) => write!(f, "invalid program: {e}"),
            ScheduleError::Unschedulable { op } => write!(f, "operation `{op}` cannot issue"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<ProgramError> for ScheduleError {
    fn from(e: ProgramError) -> Self {
        ScheduleError::Invalid(e)
    }
}

/// Register-space key for dependence tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RegKey {
    Gpr(u8),
    Br(u8),
}

fn op_defs(op: &Op) -> Option<RegKey> {
    match op.dest {
        Dest::Gpr(r) if !r.is_zero() => Some(RegKey::Gpr(r.index())),
        Dest::Gpr(_) => None, // writes to $r0 are discarded
        Dest::Br(b) => Some(RegKey::Br(b.index())),
        Dest::None => None,
    }
}

fn op_uses(op: &Op) -> Vec<RegKey> {
    let mut v = Vec::new();
    for r in op.gpr_reads() {
        if !r.is_zero() {
            v.push(RegKey::Gpr(r.index()));
        }
    }
    for b in op.br_reads() {
        v.push(RegKey::Br(b.index()));
    }
    v
}

struct Dag {
    /// `succs[i]` = (successor index, edge latency)
    succs: Vec<Vec<(usize, u64)>>,
    npreds: Vec<usize>,
    height: Vec<u64>,
}

fn build_dag(ops: &[Op], cfg: &MachineConfig) -> Dag {
    let n = ops.len();
    let mut succs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let mut npreds = vec![0usize; n];
    let add_edge = |succs: &mut Vec<Vec<(usize, u64)>>,
                    npreds: &mut Vec<usize>,
                    from: usize,
                    to: usize,
                    lat: u64| {
        debug_assert!(from < to);
        if let Some(e) = succs[from].iter_mut().find(|(t, _)| *t == to) {
            e.1 = e.1.max(lat);
        } else {
            succs[from].push((to, lat));
            npreds[to] += 1;
        }
    };

    let mut last_def: HashMap<RegKey, usize> = HashMap::new();
    let mut last_uses: HashMap<RegKey, Vec<usize>> = HashMap::new();
    let mut last_store: Option<usize> = None;
    let mut loads_since_store: Vec<usize> = Vec::new();
    let mut last_rfu: Option<usize> = None;

    for (i, op) in ops.iter().enumerate() {
        // Register dependences.
        for key in op_uses(op) {
            if let Some(&d) = last_def.get(&key) {
                add_edge(&mut succs, &mut npreds, d, i, cfg.latency(&ops[d]));
            }
            last_uses.entry(key).or_default().push(i);
        }
        if let Some(key) = op_defs(op) {
            if let Some(&d) = last_def.get(&key) {
                add_edge(&mut succs, &mut npreds, d, i, 1); // WAW
            }
            if let Some(users) = last_uses.get(&key) {
                for &u in users {
                    if u != i {
                        add_edge(&mut succs, &mut npreds, u, i, 0); // WAR
                    }
                }
            }
            last_def.insert(key, i);
            last_uses.insert(key, vec![]);
        }

        // Conservative memory ordering: stores are barriers; loads may
        // reorder among themselves.
        if op.opcode.is_store() {
            if let Some(s) = last_store {
                add_edge(&mut succs, &mut npreds, s, i, 1);
            }
            for &l in &loads_since_store {
                add_edge(&mut succs, &mut npreds, l, i, 1);
            }
            loads_since_store.clear();
            last_store = Some(i);
        } else if op.opcode.is_load() {
            if let Some(s) = last_store {
                add_edge(&mut succs, &mut npreds, s, i, 1);
            }
            loads_since_store.push(i);
        }

        // RFU protocol ordering: the configuration state machine requires
        // program order among all RFU-dispatched operations.
        if op.opcode.is_rfu() {
            if let Some(r) = last_rfu {
                add_edge(&mut succs, &mut npreds, r, i, 1);
            }
            last_rfu = Some(i);
        }

        // The control op issues no earlier than every other operation.
        if op.opcode.is_control() {
            for j in 0..i {
                add_edge(&mut succs, &mut npreds, j, i, 0);
            }
        }
    }

    // Critical-path heights (ops are topologically ordered by index).
    let mut height = vec![0u64; n];
    for i in (0..n).rev() {
        let mut h = 0;
        for &(t, lat) in &succs[i] {
            h = h.max(height[t] + lat.max(1));
        }
        height[i] = h;
    }

    Dag {
        succs,
        npreds,
        height,
    }
}

/// Schedules one block; returns its bundles.
fn schedule_block(ops: &[Op], cfg: &MachineConfig) -> Result<Vec<Bundle>, ScheduleError> {
    if ops.is_empty() {
        return Ok(Vec::new());
    }
    let n = ops.len();
    let dag = build_dag(ops, cfg);
    let mut npreds = dag.npreds.clone();
    // Earliest issue cycle permitted by already-scheduled predecessors.
    let mut earliest = vec![0u64; n];
    let mut scheduled = vec![false; n];
    let mut remaining = n;
    let mut bundles: Vec<Bundle> = Vec::new();
    let mut cycle: u64 = 0;

    while remaining > 0 {
        let mut bundle = Bundle::new();
        // Candidates ready this cycle, by decreasing height then program
        // order (stable tie-break keeps schedules deterministic).
        let mut ready: Vec<usize> = (0..n)
            .filter(|&i| !scheduled[i] && npreds[i] == 0 && earliest[i] <= cycle)
            .collect();
        ready.sort_by_key(|&i| (std::cmp::Reverse(dag.height[i]), i));
        let mut placed_any = false;
        for &i in &ready {
            if bundle.push(ops[i], cfg).is_ok() {
                scheduled[i] = true;
                remaining -= 1;
                placed_any = true;
                for &(t, lat) in &dag.succs[i] {
                    npreds[t] -= 1;
                    earliest[t] = earliest[t].max(cycle + lat);
                }
            }
        }
        if !placed_any {
            // No candidate fit this cycle: if none is even ready, advance to
            // the next cycle; if one is ready but can never fit an empty
            // bundle, the program is unschedulable.
            if let Some(&i) = ready.first() {
                let mut probe = Bundle::new();
                if probe.push(ops[i], cfg).is_err() {
                    return Err(ScheduleError::Unschedulable {
                        op: ops[i].to_string(),
                    });
                }
            }
        }
        bundles.push(bundle);
        cycle += 1;
    }
    // Drop trailing empty bundles (possible when latencies stretch past the
    // last issue — completion happens in flight).
    while bundles.last().is_some_and(Bundle::is_empty) {
        bundles.pop();
    }
    Ok(bundles)
}

/// Schedules `program` for `cfg`, producing executable [`Code`].
///
/// # Errors
///
/// [`ScheduleError::Invalid`] when the program fails validation;
/// [`ScheduleError::Unschedulable`] when an operation cannot issue on the
/// machine at all.
pub fn schedule(program: &Program, cfg: &MachineConfig) -> Result<Code, ScheduleError> {
    program.validate()?;
    let mut bundles: Vec<Bundle> = Vec::new();
    let mut label_at: HashMap<Label, usize> = HashMap::new();
    let mut block_bundles: Vec<Vec<Bundle>> = Vec::with_capacity(program.blocks.len());
    for block in &program.blocks {
        block_bundles.push(schedule_block(&block.ops, cfg)?);
    }
    for (block, bb) in program.blocks.iter().zip(block_bundles) {
        label_at.insert(block.label, bundles.len());
        bundles.extend(bb);
    }
    // Resolve branch targets from label ids to bundle indices. Validation
    // already checked every reference, so a miss here (or a rebundling
    // overflow below) is a scheduler bug surfaced as Unschedulable rather
    // than a panic.
    let resolve = |label_id: u32| -> Option<usize> { label_at.get(&Label(label_id)).copied() };
    let mut resolved = Vec::with_capacity(bundles.len());
    for b in bundles {
        let mut nb = Bundle::new();
        for op in b.ops() {
            let mut op = *op;
            if op.opcode.is_control() {
                if let Some(t) = op.target {
                    let at = resolve(t).ok_or_else(|| ScheduleError::Unschedulable {
                        op: format!("{op} (unresolved label {t})"),
                    })?;
                    op.target = Some(at as u32);
                }
            }
            nb.push(op, cfg)
                .map_err(|_| ScheduleError::Unschedulable { op: op.to_string() })?;
        }
        resolved.push(nb);
    }
    Ok(Code::new(program.name.clone(), resolved, label_at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;
    use rvliw_isa::{Br, Gpr, Opcode};

    fn st200() -> MachineConfig {
        MachineConfig::st200()
    }

    #[test]
    fn independent_ops_pack_into_one_bundle() {
        let mut b = Builder::new("t");
        for i in 1..5 {
            b.movi(Gpr::new(i), i32::from(i));
        }
        b.halt();
        let code = schedule(&b.build(), &st200()).unwrap();
        // 4 moves in one bundle, halt in the next.
        assert_eq!(code.bundles()[0].ops().len(), 4);
        assert_eq!(code.bundles()[1].ops()[0].opcode, Opcode::Halt);
    }

    #[test]
    fn raw_dependence_separates_by_latency() {
        let mut b = Builder::new("t");
        let (x, y) = (Gpr::new(1), Gpr::new(2));
        b.ldw(x, Gpr::new(3), 0);
        b.addi(y, x, 1); // load-use latency 3 ⇒ issues at cycle 3
        b.halt();
        let code = schedule(&b.build(), &st200()).unwrap();
        let add_cycle = code
            .bundles()
            .iter()
            .position(|bu| bu.ops().iter().any(|o| o.opcode == Opcode::Add))
            .unwrap();
        assert_eq!(add_cycle, 3);
    }

    #[test]
    fn single_lsu_serializes_loads() {
        let mut b = Builder::new("t");
        for i in 1..4 {
            b.ldw(Gpr::new(i), Gpr::new(10), i32::from(i) * 4);
        }
        b.halt();
        let code = schedule(&b.build(), &st200()).unwrap();
        for (i, bu) in code.bundles().iter().take(3).enumerate() {
            let loads = bu.ops().iter().filter(|o| o.opcode == Opcode::Ldw).count();
            assert_eq!(loads, 1, "cycle {i}");
        }
    }

    #[test]
    fn branch_is_in_last_bundle_of_block() {
        let mut b = Builder::new("t");
        let i = Gpr::new(1);
        let c = Br::new(0);
        b.movi(i, 10);
        let top = b.label();
        b.bind(top);
        b.subi(i, i, 1);
        b.cmpne_br(c, i, 0);
        b.br(c, top);
        b.halt();
        let code = schedule(&b.build(), &st200()).unwrap();
        let loop_start = code.label_index(top).unwrap();
        // Find the BrT bundle; everything of the loop body must be at or
        // before it.
        let br_idx = code
            .bundles()
            .iter()
            .position(|bu| bu.ops().iter().any(|o| o.opcode == Opcode::BrT))
            .unwrap();
        assert!(br_idx >= loop_start);
        let br_op = code.bundles()[br_idx]
            .ops()
            .iter()
            .find(|o| o.opcode == Opcode::BrT)
            .unwrap();
        assert_eq!(br_op.target, Some(loop_start as u32));
        // cmp (latency 2 to BR) must precede the branch by ≥2 cycles.
        let cmp_idx = code
            .bundles()
            .iter()
            .position(|bu| bu.ops().iter().any(|o| o.opcode == Opcode::CmpNe))
            .unwrap();
        assert!(br_idx >= cmp_idx + 2);
    }

    #[test]
    fn waw_preserves_final_value_order() {
        let mut b = Builder::new("t");
        let x = Gpr::new(1);
        b.movi(x, 1);
        b.movi(x, 2);
        b.halt();
        let code = schedule(&b.build(), &st200()).unwrap();
        // The two moves must issue in different cycles, program order.
        let cycles: Vec<usize> = code
            .bundles()
            .iter()
            .enumerate()
            .filter(|(_, bu)| bu.ops().iter().any(|o| o.opcode == Opcode::Mov))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(cycles.len(), 2);
        assert!(cycles[0] < cycles[1]);
    }

    #[test]
    fn store_load_order_is_preserved() {
        let mut b = Builder::new("t");
        let (v, base, out) = (Gpr::new(1), Gpr::new(2), Gpr::new(3));
        b.movi(v, 42);
        b.stw(v, base, 0);
        b.ldw(out, base, 0); // must observe the store
        b.halt();
        let code = schedule(&b.build(), &st200()).unwrap();
        let st = code
            .bundles()
            .iter()
            .position(|bu| bu.ops().iter().any(|o| o.opcode == Opcode::Stw))
            .unwrap();
        let ld = code
            .bundles()
            .iter()
            .position(|bu| bu.ops().iter().any(|o| o.opcode == Opcode::Ldw))
            .unwrap();
        assert!(ld > st);
    }

    #[test]
    fn rfu_ops_serialize_in_program_order() {
        let mut b = Builder::new("t");
        b.rfu_init(1);
        b.rfu_send(1, &[Gpr::new(1), Gpr::new(2)]);
        b.rfu_send(1, &[Gpr::new(3), Gpr::new(4)]);
        b.rfu_exec(1, Gpr::new(5), &[]);
        b.halt();
        let code = schedule(&b.build(), &st200()).unwrap();
        let mut seen = Vec::new();
        for bu in code.bundles() {
            for o in bu.ops() {
                if o.opcode.is_rfu() {
                    seen.push(o.opcode);
                }
            }
        }
        assert_eq!(
            seen,
            vec![
                Opcode::RfuInit,
                Opcode::RfuSend,
                Opcode::RfuSend,
                Opcode::RfuExec
            ]
        );
        // One RFU op per cycle at most.
        for bu in code.bundles() {
            assert!(bu.ops().iter().filter(|o| o.opcode.is_rfu()).count() <= 1);
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let build = || {
            let mut b = Builder::new("t");
            for i in 1..9 {
                b.addi(Gpr::new(i), Gpr::new(i.wrapping_sub(1) % 8), 1);
            }
            b.halt();
            b.build()
        };
        let c1 = schedule(&build(), &st200()).unwrap();
        let c2 = schedule(&build(), &st200()).unwrap();
        assert_eq!(c1.disassemble(), c2.disassemble());
    }
}
