//! Scheduled code: the executable artifact.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use rvliw_cache::KeyBuilder;
use rvliw_isa::{encode_op, Bundle};

use crate::program::Label;

/// Source of unique program identities (see [`Code::id`]).
static NEXT_CODE_ID: AtomicU64 = AtomicU64::new(1);

/// The 128-bit content address of a scheduled program (see
/// [`Code::content_key`]): two independent FNV-1a streams over the encoded
/// syllable words and bundle boundaries, following `rvliw-cache`'s
/// [`KeyBuilder`] discipline. Two separately scheduled but identical
/// programs share a key; any difference in operations, operands, resolved
/// targets or bundle packing yields a different key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CodeKey(rvliw_cache::CacheKey);

impl CodeKey {
    /// The key as 32 lowercase hex digits.
    #[must_use]
    pub fn hex(&self) -> String {
        self.0.hex()
    }
}

impl fmt::Display for CodeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A scheduled program: VLIW bundles with resolved branch targets.
///
/// Branch operations inside the bundles carry *bundle indices* in their
/// `target` field (the assembler resolved the labels). The simulator's
/// program counter is a bundle index.
#[derive(Debug, Clone)]
pub struct Code {
    id: u64,
    name: String,
    bundles: Vec<Bundle>,
    label_at: HashMap<Label, usize>,
    /// Lazily computed content address (see [`Code::content_key`]). A
    /// clone copies the computed value, so repeated keying stays cheap.
    content_key: OnceLock<CodeKey>,
}

// Equality compares program content only; `id` is an identity tag for
// caches (two separately scheduled but identical programs compare equal
// while keeping distinct ids).
impl PartialEq for Code {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.bundles == other.bundles && self.label_at == other.label_at
    }
}

impl Code {
    pub(crate) fn new(name: String, bundles: Vec<Bundle>, label_at: HashMap<Label, usize>) -> Self {
        Code {
            id: NEXT_CODE_ID.fetch_add(1, Ordering::Relaxed),
            name,
            bundles,
            label_at,
            content_key: OnceLock::new(),
        }
    }

    /// The 128-bit content address of this program: a hash over every
    /// bundle's encoded syllable words plus the bundle boundaries
    /// ([`encode_op`] is lossless, so resolved branch targets and RFU
    /// configuration ids are covered). Unlike [`Code::id`] — a
    /// process-unique counter — the content key identifies *what* the
    /// program is, so derived artifacts (pre-decoded code, compiled
    /// blocks) can be shared between separately scheduled but identical
    /// programs and can never be cross-served between different ones.
    ///
    /// Computed once and cached; the program name is deliberately
    /// excluded (execution semantics do not depend on it).
    #[must_use]
    pub fn content_key(&self) -> CodeKey {
        *self.content_key.get_or_init(|| {
            let mut kb = KeyBuilder::new("code-content", 1);
            let mut words = Vec::new();
            let mut sizes = Vec::with_capacity(self.bundles.len());
            for b in &self.bundles {
                let start = words.len();
                for op in b.ops() {
                    encode_op(op, &mut words);
                }
                sizes.push((words.len() - start) as u32);
            }
            kb.field_words("words", &words);
            kb.field_words("bundle-sizes", &sizes);
            CodeKey(kb.finish())
        })
    }

    /// A process-unique identity for this scheduled program, stable across
    /// clones. Consumers (such as the simulator's pre-decode cache) may key
    /// derived artifacts on it instead of hashing the whole program.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The program name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scheduled bundles; the machine issues one per cycle.
    #[must_use]
    pub fn bundles(&self) -> &[Bundle] {
        &self.bundles
    }

    /// The bundle index a label resolves to.
    #[must_use]
    pub fn label_index(&self, label: Label) -> Option<usize> {
        self.label_at.get(&label).copied()
    }

    /// Total operations across all bundles (excluding empty filler cycles).
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.bundles.iter().map(|b| b.ops().len()).sum()
    }

    /// Static code size in 32-bit syllable words, as seen by the
    /// instruction cache (each bundle padded to the encoded length of its
    /// operations, minimum one word).
    #[must_use]
    pub fn size_words(&self) -> usize {
        let mut words = Vec::new();
        let mut total = 0usize;
        for b in &self.bundles {
            words.clear();
            for op in b.ops() {
                encode_op(op, &mut words);
            }
            total += words.len().max(1);
        }
        total
    }

    /// A full disassembly listing.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut rev: HashMap<usize, Vec<Label>> = HashMap::new();
        for (l, i) in &self.label_at {
            rev.entry(*i).or_default().push(*l);
        }
        let mut out = format!("; program {} ({} bundles)\n", self.name, self.bundles.len());
        for (i, b) in self.bundles.iter().enumerate() {
            if let Some(ls) = rev.get(&i) {
                let mut ls = ls.clone();
                ls.sort();
                for l in ls {
                    out.push_str(&format!("{l}:\n"));
                }
            }
            out.push_str(&format!("{i:5}:"));
            if b.is_empty() {
                out.push_str("  nop\n");
            } else {
                // Branch targets are bundle indices after scheduling; render
                // them as `@index` so they are not mistaken for label names.
                let ops: Vec<String> = b
                    .ops()
                    .iter()
                    .map(|o| {
                        let s = o.to_string();
                        match (o.opcode.is_control(), o.target) {
                            (true, Some(t)) => s.replace(&format!("-> L{t}"), &format!("-> @{t}")),
                            _ => s,
                        }
                    })
                    .collect();
                out.push_str(&format!("  {}\n", ops.join("  ||  ")));
            }
        }
        out
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

#[cfg(test)]
mod tests {
    use crate::Builder;
    use rvliw_isa::{Br, Gpr, Opcode};

    fn sample() -> super::Code {
        let mut b = Builder::new("sample");
        let i = Gpr::new(1);
        let c = Br::new(0);
        b.movi(i, 3);
        let top = b.label();
        b.bind(top);
        b.subi(i, i, 1);
        b.cmpne_br(c, i, 0);
        b.br(c, top);
        b.halt();
        crate::schedule_st200(&b.build()).unwrap()
    }

    #[test]
    fn label_index_resolves_bound_labels() {
        let code = sample();
        // The loop label exists and points inside the program.
        let labels: Vec<usize> = (0..10)
            .filter_map(|i| code.label_index(crate::Label(i)))
            .collect();
        assert!(!labels.is_empty());
        for idx in labels {
            assert!(idx <= code.bundles().len());
        }
    }

    #[test]
    fn size_words_counts_syllables() {
        let code = sample();
        // At least one word per op; long immediates add more.
        assert!(code.size_words() >= code.num_ops());
    }

    #[test]
    fn disassembly_renders_targets_as_bundle_indices() {
        let code = sample();
        let text = code.disassemble();
        assert!(text.contains("-> @"), "{text}");
        assert!(text.contains("br $b0"), "{text}");
        // Every branch target is a valid bundle index.
        for b in code.bundles() {
            for op in b.ops() {
                if op.opcode == Opcode::BrT {
                    let t = op.target.unwrap() as usize;
                    assert!(t < code.bundles().len());
                }
            }
        }
    }

    #[test]
    fn display_matches_disassemble() {
        let code = sample();
        assert_eq!(code.to_string(), code.disassemble());
    }

    #[test]
    fn content_key_is_content_addressed() {
        // Two separately scheduled identical programs: distinct ids,
        // identical content keys.
        let a = sample();
        let b = sample();
        assert_ne!(a.id(), b.id());
        assert_eq!(a.content_key(), b.content_key());
        // A clone shares both.
        let c = a.clone();
        assert_eq!(a.id(), c.id());
        assert_eq!(a.content_key(), c.content_key());
    }

    #[test]
    fn content_key_differs_for_different_programs() {
        let a = sample();
        let mut b = Builder::new("sample");
        b.movi(Gpr::new(1), 4); // immediate differs from sample()'s 3
        b.halt();
        let b = crate::schedule_st200(&b.build()).unwrap();
        assert_ne!(a.content_key(), b.content_key());
        assert_eq!(a.content_key().hex().len(), 32);
    }

    #[test]
    fn content_key_ignores_the_program_name() {
        let mk = |name: &str| {
            let mut b = Builder::new(name);
            b.movi(Gpr::new(1), 7);
            b.halt();
            crate::schedule_st200(&b.build()).unwrap()
        };
        assert_eq!(mk("x").content_key(), mk("y").content_key());
    }
}
