//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the real proptest cannot
//! be fetched. This crate implements the subset the workspace's property
//! tests use — deterministic random generation driven by a seeded
//! [`test_runner::TestRng`], the [`strategy::Strategy`] combinators
//! (`prop_map`, `prop_filter`), `Just`, ranges, tuples, `collection::vec`,
//! `array::uniform*`, `option::of`, weighted `prop_oneof!`, and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with the generated inputs
//!   (printed by the assertion message), but is not minimized.
//! * **Fixed deterministic seeding** — every test function derives its RNG
//!   seed from its own name, so runs are reproducible and failures stable.

pub mod array;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The `proptest::prelude` equivalent.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs one generated case inside `proptest!` (see the macro).
#[doc(hidden)]
pub fn __run_cases(
    config: &test_runner::ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut test_runner::TestRng),
) {
    let mut rng = test_runner::TestRng::for_test(name);
    for _ in 0..config.cases {
        case(&mut rng);
    }
}

/// The `proptest!` macro: declares `#[test]` functions whose arguments are
/// drawn from strategies for `config.cases` iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_variables)]
                let config = $config;
                $crate::__run_cases(&config, stringify!($name), |__rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);
                    )*
                    $body
                });
            }
        )*
    };
}

/// `prop_assert!`: asserts inside a property (panics on failure — the
/// stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// `prop_oneof!`: picks one of several strategies, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
}
