//! Deterministic RNG and configuration for the proptest stand-in.

/// Configuration: only the `cases` knob is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the stand-in keeps that so
        // coverage is comparable.
        ProptestConfig { cases: 256 }
    }
}

/// A small, fast, deterministic RNG (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name (stable across runs and platforms).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, folded into a nonzero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)` (n > 0), via widening multiply.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_bounded() {
        let mut rng = TestRng::for_test("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
