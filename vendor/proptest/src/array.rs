//! `proptest::array` subset: fixed-size arrays of one element strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `[S::Value; N]` by drawing each element in index order.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_ctor {
    ($($name:ident => $n:literal),* $(,)?) => {$(
        /// An array of values drawn from one element strategy.
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*};
}

uniform_ctor!(uniform4 => 4, uniform5 => 5, uniform32 => 32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_have_fixed_len_and_bounds() {
        let mut rng = TestRng::for_test("arr");
        let a = uniform4(0u32..16).generate(&mut rng);
        assert!(a.iter().all(|&v| v < 16));
        let b = uniform32(0u32..4).generate(&mut rng);
        assert_eq!(b.len(), 32);
    }
}
