//! `proptest::collection` subset: `vec`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: an exact length or a half-open range,
/// mirroring real proptest's `Into<SizeRange>` conversions.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range is empty");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Generates `Vec<S::Value>` with a length drawn from the size range.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A strategy for vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::for_test("veclen");
        let exact = vec(0u8..10, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
        let ranged = vec(0u8..10, 1..5);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
