//! The [`Strategy`] trait and core combinators.
//!
//! A strategy deterministically maps draws from a [`TestRng`] to values.
//! Unlike real proptest there is no value tree and no shrinking: `generate`
//! produces a finished value directly.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates values of an associated type from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying the draw otherwise.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy as a trait object (used by `prop_oneof!` so the arms
/// unify to one type).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Matches real proptest's local-reject behaviour, minus backtracking:
        // resample until the predicate holds, with a cap so a predicate that
        // can never hold fails loudly instead of hanging.
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// Weighted choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u32,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` pairs. Weights must not all
    /// be zero.
    #[must_use]
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u32 = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof!: total weight must be positive");
        Union { options, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (weight, strat) in &self.options {
            if pick < *weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of bounds")
    }
}

/// Produces any value of `T` (the `any::<T>()` entry point).
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

arbitrary_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                // Span fits in u64 for every supported type (≤ 64 bits),
                // computed in the signed domain so negative bounds work.
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "strategy range is empty");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (-255i32..=255).generate(&mut rng);
            assert!((-255..=255).contains(&v));
            let u = (0u8..64).generate(&mut rng);
            assert!(u < 64);
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut rng = TestRng::for_test("mapfilter");
        let s = (0u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v > 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v > 0 && v < 200 && v % 2 == 0);
        }
    }

    #[test]
    fn union_honours_weights() {
        let mut rng = TestRng::for_test("union");
        let u = Union::new(vec![(9, boxed(Just(1u32))), (1, boxed(Just(2u32)))]);
        let mut ones = 0;
        for _ in 0..1000 {
            if u.generate(&mut rng) == 1 {
                ones += 1;
            }
        }
        assert!(ones > 700, "weight-9 arm drawn only {ones}/1000 times");
    }
}
