//! `proptest::option` subset: `of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Option<S::Value>`, `Some` three times out of four (real
/// proptest's default `Probability(0.5)` weights `Some` higher in practice
/// for small cases; 3:1 keeps both arms well exercised).
pub struct OptionStrategy<S> {
    inner: S,
}

/// A strategy producing `None` or `Some` of the inner strategy's values.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_arms_occur() {
        let mut rng = TestRng::for_test("opt");
        let s = of(0u32..10);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
