//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real criterion cannot
//! be fetched. This crate implements the subset the workspace's benches
//! use: `Criterion::benchmark_group`, group configuration
//! (`sample_size`, `measurement_time`, `throughput`), `bench_function`
//! with `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each sample times a batch of iterations sized so a
//! batch takes roughly 1/10 of the per-sample budget; the report prints
//! the minimum, mean, and maximum per-iteration time (the mean is the
//! headline number). There is no statistical analysis, HTML report, or
//! saved baseline — output goes to stdout only.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units-per-iteration annotation; printed alongside timing as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// `n` logical elements processed per iteration.
    Elements(u64),
    /// `n` bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark context handed to each registered bench function.
pub struct Criterion {
    /// Substring filter from the command line (first free argument).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // flags used by real criterion (e.g. `--bench`) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            group_name: name.to_string(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    group_name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for the timed samples of one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark if it passes the command-line filter.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.group_name);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&full, self.throughput);
        self
    }

    /// Ends the group (kept for API compatibility; groups have no state to
    /// flush in the stand-in).
    pub fn finish(&mut self) {}
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Collected (batch duration, iterations in batch) pairs.
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Measures `routine`, running it enough times to fill the group's
    /// measurement budget across `sample_size` samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and calibration: find how many iterations fit in one
        // per-sample slot.
        let warmup_start = Instant::now();
        black_box(routine());
        let one = warmup_start.elapsed().max(Duration::from_nanos(1));
        let slot = self.measurement_time / self.sample_size as u32;
        let per_batch = (slot.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), per_batch));
            // Never exceed twice the requested budget even if calibration
            // was off (e.g. the first iteration hit cold caches).
            if budget_start.elapsed() > self.measurement_time * 2 {
                break;
            }
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(d, n)| d.as_secs_f64() / *n as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().copied().fold(0.0f64, f64::max);
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / mean)
            }
            None => String::new(),
        };
        println!(
            "{name:<44} [{} {} {}]{rate}",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
