//! ChaCha12 block generator, bit-compatible with `rand_chacha`'s
//! `ChaCha12Rng` (the engine behind rand 0.8's `StdRng`).
//!
//! The generator buffers four 64-byte blocks per refill exactly like
//! `rand_chacha` (whose `BUF_BLOCKS` is 4), and the `next_u32`/`next_u64`
//! consumption rules replicate `rand_core::block::BlockRng` so word
//! alignment across refills matches the real crate.

const BUF_WORDS: usize = 64; // four 16-word ChaCha blocks per refill
const ROUNDS: usize = 12;

/// ChaCha12 core with a 64-bit block counter (words 12–13) and a 64-bit
/// stream id (words 14–15, always zero for `StdRng`).
#[derive(Debug, Clone)]
pub struct ChaCha12 {
    key: [u32; 8],
    counter: u64,
    results: [u32; BUF_WORDS],
    index: usize,
}

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12 {
    /// Creates the generator from a 32-byte key (little-endian words).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha12 {
            key,
            counter: 0,
            results: [0; BUF_WORDS],
            index: BUF_WORDS, // empty: first use refills
        }
    }

    fn block(&self, counter: u64, out: &mut [u32]) {
        // "expand 32-byte k"
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
            *o = s.wrapping_add(*i);
        }
    }

    fn refill(&mut self) {
        for b in 0..BUF_WORDS / 16 {
            let counter = self.counter.wrapping_add(b as u64);
            let mut block = [0u32; 16];
            self.block(counter, &mut block);
            self.results[b * 16..(b + 1) * 16].copy_from_slice(&block);
        }
        self.counter = self.counter.wrapping_add((BUF_WORDS / 16) as u64);
        self.index = 0;
    }

    /// `BlockRng::next_u32` semantics.
    pub fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let v = self.results[self.index];
        self.index += 1;
        v
    }

    /// `BlockRng::next_u64` semantics, including the buffer-crossing case.
    pub fn next_u64(&mut self) -> u64 {
        let read = |results: &[u32; BUF_WORDS], i: usize| {
            (u64::from(results[i + 1]) << 32) | u64::from(results[i])
        };
        if self.index < BUF_WORDS - 1 {
            let v = read(&self.results, self.index);
            self.index += 2;
            v
        } else if self.index >= BUF_WORDS {
            self.refill();
            self.index = 2;
            read(&self.results, 0)
        } else {
            // One word left: low half from the old buffer, high half from
            // the fresh one (rand_core's exact crossing rule).
            let low = u64::from(self.results[BUF_WORDS - 1]);
            self.refill();
            self.index = 1;
            let high = u64::from(self.results[0]);
            (high << 32) | low
        }
    }

    /// `BlockRng::fill_bytes` equivalent (sequential u32 consumption).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let v = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// IETF ChaCha test structure: with a zero key the first block must be
    /// a fixed permutation — checked indirectly by determinism plus
    /// distinctness across counters.
    #[test]
    fn blocks_differ_by_counter_and_are_deterministic() {
        let g = ChaCha12::from_seed([0; 32]);
        let mut b0 = [0u32; 16];
        let mut b1 = [0u32; 16];
        g.block(0, &mut b0);
        g.block(1, &mut b1);
        assert_ne!(b0, b1);
        let mut b0_again = [0u32; 16];
        g.block(0, &mut b0_again);
        assert_eq!(b0, b0_again);
    }

    #[test]
    fn word_stream_is_sequential_across_refills() {
        let mut a = ChaCha12::from_seed([7; 32]);
        let mut b = ChaCha12::from_seed([7; 32]);
        let words: Vec<u32> = (0..BUF_WORDS + 8).map(|_| a.next_u32()).collect();
        let pairs: Vec<u64> = (0..(BUF_WORDS + 8) / 2).map(|_| b.next_u64()).collect();
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(*p & 0xffff_ffff, u64::from(words[2 * i]));
            assert_eq!(*p >> 32, u64::from(words[2 * i + 1]));
        }
    }
}
