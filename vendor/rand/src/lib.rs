//! Offline stand-in for the `rand` crate (0.8 line).
//!
//! The build container has no network access and no vendored registry, so
//! the real `rand` cannot be fetched. This crate implements the *exact*
//! subset of rand 0.8 this workspace uses, bit-compatible with the real
//! implementation so every seeded sequence (and therefore every committed
//! experiment number) is unchanged:
//!
//! * [`rngs::StdRng`] — ChaCha12, identical to rand 0.8's `StdRng`;
//! * [`SeedableRng::seed_from_u64`] — the PCG32-based seed expansion of
//!   `rand_core` 0.6;
//! * [`Rng::gen_range`] over float and integer ranges — the widening
//!   sample algorithms of rand 0.8's `UniformFloat` / `UniformInt`;
//! * [`Rng::gen`] for primitive integers, floats and booleans.
//!
//! Only the APIs exercised by this workspace are provided; anything else
//! is intentionally absent so accidental new uses fail loudly at compile
//! time rather than silently diverging from the real crate.

pub mod rngs;

mod chacha;
mod uniform;

/// Core RNG abstraction (the `rand_core` subset the workspace needs).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A seedable RNG (the `rand_core` subset the workspace needs).
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanding it with the same PCG32-based
    /// key-derivation rand_core 0.6 uses (bit-identical output).
    fn seed_from_u64(mut state: u64) -> Self {
        // Constants from rand_core 0.6's default implementation.
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing random-value API (the `rand::Rng` subset the workspace
/// needs).
pub trait Rng: RngCore {
    /// Samples a uniform value from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of a primitive type uniformly (`Standard`
    /// distribution semantics of rand 0.8).
    fn gen<T: uniform::Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub use uniform::{SampleRange, Standard};

/// Distribution types (minimal `rand::distributions` face).
pub mod distributions {
    pub use crate::uniform::Standard;
}
