//! Uniform sampling, matching rand 0.8's algorithms bit for bit for the
//! types the workspace draws (`f64` ranges via `gen_range`, plain
//! primitives via `gen`).
//!
//! The trait shape mirrors rand 0.8 — a blanket `impl SampleRange<T> for
//! Range<T> where T: SampleUniform` — so type inference behaves the same
//! (a float literal range resolves to `f64` by fallback).

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// A range that can produce uniform samples of `T` (rand 0.8's
/// `SampleRange` face).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types samplable uniformly from a range (rand 0.8's `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Samples from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Samples from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_range_inclusive(low, high, rng)
    }
}

/// The `Standard` distribution face: uniform over the whole domain of a
/// primitive type. Implemented as a trait on the sampled type so
/// `Rng::gen::<T>()` works without a distribution object.
pub trait Standard {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: `rng.next_u32() < (1 << 31)` — exactly half the domain.
        rng.next_u32() < (1 << 31)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → [0, 1), rand 0.8's `Standard`.
        let v = rng.next_u64() >> 11;
        v as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let v = rng.next_u32() >> 8;
        v as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// f64 in [1, 2) from 52 random mantissa bits (rand 0.8's
/// `into_float_with_exponent(0)`).
fn f64_1_2<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let bits = rng.next_u64() >> 12; // discard 12, keep 52 fraction bits
    f64::from_bits(bits | (1023u64 << 52))
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "Uniform::sample_single: range is empty");
        let scale = high - low;
        // rand 0.8's UniformFloat::sample_single: multiply-add in [0, 1)
        // and reject the (vanishingly rare) rounding onto `high`.
        loop {
            let value0_1 = f64_1_2(rng) - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
        }
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        // rand 0.8 samples inclusive float ranges with the same multiply-add
        // but scale adjusted so `high` is reachable; the workspace never
        // draws one, so the half-open algorithm (a sub-ULP difference at the
        // top end) suffices.
        assert!(low <= high, "Uniform::sample_single: range is empty");
        let scale = high - low;
        let value0_1 = f64_1_2(rng) - 1.0;
        (value0_1 * scale + low).min(high)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "Uniform::sample_single: range is empty");
        let scale = high - low;
        loop {
            let bits = rng.next_u32() >> 9; // 23 fraction bits
            let value0_1 = f32::from_bits(bits | (127u32 << 23)) - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
        }
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low <= high, "Uniform::sample_single: range is empty");
        let scale = high - low;
        let bits = rng.next_u32() >> 9;
        let value0_1 = f32::from_bits(bits | (127u32 << 23)) - 1.0;
        (value0_1 * scale + low).min(high)
    }
}

/// Widening multiply on u64 (rand's `wmul`).
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let t = u128::from(a) * u128::from(b);
    ((t >> 64) as u64, t as u64)
}

/// Widening-multiply sample with rejection zone (rand 0.8's
/// `UniformInt::sample_single` widened to u64). `range == 0` means the
/// full 64-bit domain.
fn sample_int_range<R: RngCore + ?Sized>(range: u64, rng: &mut R) -> u64 {
    if range == 0 {
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul64(v, range);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "Uniform::sample_single: range is empty");
                let range = (high as i64).wrapping_sub(low as i64) as u64;
                low.wrapping_add(sample_int_range(range, rng) as $t)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "Uniform::sample_single: range is empty");
                let range = (high as i64)
                    .wrapping_sub(low as i64)
                    .wrapping_add(1) as u64;
                low.wrapping_add(sample_int_range(range, rng) as $t)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn float_literal_range_infers_f64() {
        // Regression guard: this is the inference pattern synth.rs uses —
        // a bare float-literal range, with the value's type pinned to f64
        // only by a later use.
        let mut rng = StdRng::seed_from_u64(9);
        let v = rng.gen_range(0.4..1.2);
        let pinned: f64 = v;
        assert!((0.4..1.2).contains(&pinned));
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
