//! Named RNGs (`rand::rngs` subset).

use crate::chacha::ChaCha12;
use crate::{RngCore, SeedableRng};

/// The standard RNG: ChaCha12, exactly as in rand 0.8.
#[derive(Debug, Clone)]
pub struct StdRng(ChaCha12);

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest);
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(ChaCha12::from_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(0x4652_4d4e);
        let mut b = StdRng::seed_from_u64(0x4652_4d4e);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_f64_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.1..0.7);
            assert!((0.1..0.7).contains(&v), "{v}");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
