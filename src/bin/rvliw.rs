//! `rvliw` — command-line front end for the toolchain.
//!
//! ```text
//! rvliw asm <file.s>           parse + schedule, print the bundled code
//! rvliw run <file.s> [rN=V..]  assemble and execute; prints changed GPRs
//! rvliw trace <file.s> [rN=V]  like run, with a per-bundle execution trace
//! rvliw arch                   print the Figure 1 block diagram
//! ```
//!
//! Programs use the listing syntax of `rvliw::asm::parse_program` (see
//! `examples/assemble_and_run.rs`).

use std::process::ExitCode;

use rvliw::asm::{parse_program, schedule_st200, Code};
use rvliw::exp::arch;
use rvliw::isa::{Gpr, MachineConfig};
use rvliw::mem::MemConfig;
use rvliw::sim::Machine;

fn usage() -> ExitCode {
    eprintln!("usage: rvliw <asm|run|trace> <file.s> [rN=value ...]\n       rvliw arch");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Code, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = parse_program(path, &text).map_err(|e| format!("{path}:{e}"))?;
    program.validate().map_err(|e| format!("{path}: {e}"))?;
    schedule_st200(&program).map_err(|e| format!("{path}: {e}"))
}

/// Parses `rN=value` argument overrides.
fn parse_regs(args: &[String]) -> Result<Vec<(Gpr, u32)>, String> {
    let mut out = Vec::new();
    for a in args {
        let (reg, val) = a
            .split_once('=')
            .ok_or_else(|| format!("bad register override `{a}` (want rN=value)"))?;
        let reg: Gpr = reg.parse().map_err(|e| format!("`{a}`: {e}"))?;
        let val = if let Some(hex) = val.strip_prefix("0x") {
            u32::from_str_radix(hex, 16).map_err(|e| format!("`{a}`: {e}"))?
        } else {
            val.parse::<i64>().map_err(|e| format!("`{a}`: {e}"))? as u32
        };
        out.push((reg, val));
    }
    Ok(out)
}

fn execute(path: &str, regs: &[String], trace: bool) -> Result<(), String> {
    let code = load(path)?;
    let mut m = Machine::new(MachineConfig::st200(), MemConfig::st200());
    for &(r, v) in &parse_regs(regs)? {
        m.set_gpr(r, v);
    }
    let before: Vec<u32> = (0..64).map(|i| m.gpr(Gpr::new(i))).collect();
    let summary = if trace {
        m.run_traced(&code, |cycle, pc, bundle| {
            let ops: Vec<String> = bundle.ops().iter().map(ToString::to_string).collect();
            println!("{cycle:>6} {pc:>4}  {}", ops.join("  ||  "));
        })
    } else {
        m.run(&code)
    }
    .map_err(|e| format!("execution failed: {e}"))?;
    println!(
        "halted after {} cycles ({} ops, ipc {:.2}, D$ stalls {})",
        summary.cycles,
        summary.stats.ops,
        summary.stats.ipc(),
        summary.mem.d_stall_cycles
    );
    for i in 0..64u8 {
        let r = Gpr::new(i);
        let v = m.gpr(r);
        if v != before[i as usize] {
            println!("  {r} = {v} ({v:#x})");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("arch") => {
            println!(
                "{}",
                arch::describe(&MachineConfig::st200(), &MemConfig::st200())
            );
            Ok(())
        }
        Some("asm") => match args.get(1) {
            Some(path) => load(path).map(|code| println!("{}", code.disassemble())),
            None => return usage(),
        },
        Some(cmd @ ("run" | "trace")) => match args.get(1) {
            Some(path) => execute(path, &args[2..], cmd == "trace"),
            None => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rvliw: {e}");
            ExitCode::FAILURE
        }
    }
}
