//! `rvliw` — command-line front end for the toolchain.
//!
//! ```text
//! rvliw asm <file.s>           parse + schedule, print the bundled code
//! rvliw run <file.s> [rN=V..]  assemble and execute; prints changed GPRs
//! rvliw trace <file.s> [rN=V]  like run, with a per-bundle execution trace
//! rvliw sweep <spec.json>      expand and run a declarative experiment spec
//!                              (also: rvliw sweep --spec <spec.json>)
//! rvliw explore <spec.json>    budgeted design-space exploration: run a
//!                              search strategy over an explore spec and
//!                              print the Pareto-front JSON
//! rvliw cache <stats|clear|verify>  inspect the scenario result cache
//! rvliw arch                   print the Figure 1 block diagram
//! ```
//!
//! `run` and `trace` also accept:
//!
//! ```text
//! --trace FILE        write a Chrome trace_event JSON of the run (load it
//!                     in chrome://tracing or https://ui.perfetto.dev)
//! --metrics-out FILE  write stall/cache/RFU counters and per-PC stall
//!                     histograms as JSON
//! --fault-profile P   run under a deterministic seeded fault plan
//!                     (none | latency | flush | linebuffer | bitflip | chaos)
//! --fault-seed N      seed for the fault plan (default 0)
//! --backend B         execution backend (interpreter | block-compiled |
//!                     auto); never changes results, only simulation speed
//! --substrate S       fetch/issue substrate (vliw4 | scalar); same
//!                     architectural results, different cycle counts
//! ```
//!
//! `sweep` accepts:
//!
//! ```text
//! --spec FILE         the spec file (equivalent to the positional path)
//! --threads N         worker threads (0 = auto; default: RVLIW_THREADS or
//!                     all cores)
//! --frames N          override the spec's QCIF workload length
//! --out FILE          also write the result matrix as JSON
//! --pareto            print the cycles-vs-quality Pareto partition as
//!                     JSON (rows without a quality block are skipped)
//! --pareto-out FILE   write that partition to FILE instead of stdout
//! --cache-dir DIR     reuse cached scenario results from DIR (also:
//!                     RVLIW_CACHE_DIR); results are bit-identical to an
//!                     uncached run, a summary line reports hits/misses
//! --no-cache          ignore --cache-dir / RVLIW_CACHE_DIR for this run
//! --backend B         execution backend for every simulated scenario
//! --substrate S       force one fetch/issue substrate (vliw4 | scalar) on
//!                     every sweep axis, overriding the spec's `substrate`
//!                     arrays; cross-substrate specs report per-scenario
//!                     cycle ratios after the matrix
//! --journal FILE      append every scenario outcome to FILE (JSONL) as
//!                     it lands, so an interrupted sweep can resume
//! --resume FILE       replay completed entries from a previous run's
//!                     journal instead of re-simulating them; the final
//!                     matrix is bit-identical to an uninterrupted run
//! --max-retries N     retry transient failures (injected faults, cycle
//!                     budget trips, timeouts) up to N extra attempts
//!                     with deterministic reseeded fault substreams
//! --timeout-secs N    wall-clock watchdog per scenario attempt; a hung
//!                     simulation becomes a TimedOut error instead of
//!                     stalling the sweep
//! --metrics-out FILE  write the run's cache counters and health report
//!                     (attempts, retries, timeouts, quarantined keys,
//!                     slowest scenarios) as JSON
//! ```
//!
//! `explore` accepts:
//!
//! ```text
//! --spec FILE         the explore spec (equivalent to the positional path)
//! --seed N            search seed (default 0); for a fixed seed the
//!                     printed frontier JSON is byte-identical at any
//!                     thread count and on cold or warm caches
//! --threads N         worker threads for fitness batches (0 = auto)
//! --frames N          override the spec's QCIF workload length
//! --out FILE          also write the outcome JSON to FILE
//! --cache-dir DIR     memoize scenario evaluations in DIR (also:
//!                     RVLIW_CACHE_DIR); hits never change the trajectory
//! --no-cache          ignore --cache-dir / RVLIW_CACHE_DIR for this run
//! --backend B         execution backend for every evaluated scenario
//! --journal FILE      append every evaluation outcome to FILE (JSONL)
//! --resume FILE       replay completed evaluations from a journal
//! --max-retries N     retry transient evaluation failures up to N times
//! --timeout-secs N    wall-clock watchdog per evaluation attempt
//! --metrics-out FILE  write evaluation/revisit counts and cache counters
//!                     as JSON (kept out of the frontier JSON, which must
//!                     stay byte-stable)
//! ```
//!
//! `cache` manages the scenario result cache (the directory comes from
//! `--cache-dir` or `RVLIW_CACHE_DIR`):
//!
//! ```text
//! rvliw cache stats   [--cache-dir DIR] [--json]        entry count + size
//! rvliw cache clear   [--cache-dir DIR]                 delete every entry
//! rvliw cache verify  [--cache-dir DIR] [--sample N] [--threads N]
//!                     re-simulate up to N entries (default 4) and compare
//!                     with the stored results; a divergence is a typed
//!                     error and a non-zero exit
//! ```
//!
//! Programs use the listing syntax of `rvliw::asm::parse_program` (see
//! `examples/assemble_and_run.rs`); spec files use the schema documented
//! in EXPERIMENTS.md § "Writing your own sweep".

use std::process::ExitCode;

use rvliw::asm::{parse_program, schedule_st200, Code};
use rvliw::exp::{
    arch, run_explore, run_summary, ExperimentSpec, ExploreSpec, Journal, ScenarioCache,
    SimSession, SupervisorConfig, Sweep, Workload,
};
use rvliw::fault::{FaultPlan, FaultProfile};
use rvliw::isa::{Bundle, Gpr, MachineConfig, Substrate};
use rvliw::mem::MemConfig;
use rvliw::sim::ExecBackend;
use rvliw::trace::{ChromeTracer, CountingTracer, Json, TeeTracer};

fn usage() -> ExitCode {
    eprintln!(
        "usage: rvliw <asm|run|trace> <file.s> [rN=value ...] \
         [--trace FILE] [--metrics-out FILE]\n       \
         [--fault-profile PROFILE] [--fault-seed N] [--backend B] [--substrate S]\n       \
         rvliw sweep <spec.json | --spec FILE> [--threads N] [--frames N] [--out FILE]\n       \
         [--pareto] [--pareto-out FILE] [--cache-dir DIR] [--no-cache] [--backend B]\n       \
         [--substrate S] [--journal FILE] [--resume FILE] [--max-retries N]\n       \
         [--timeout-secs N] [--metrics-out FILE]\n       \
         rvliw explore <spec.json | --spec FILE> [--seed N] [--threads N] [--frames N]\n       \
         [--out FILE] [--cache-dir DIR] [--no-cache] [--backend B] [--journal FILE]\n       \
         [--resume FILE] [--max-retries N] [--timeout-secs N] [--metrics-out FILE]\n       \
         rvliw cache <stats|clear|verify> [--cache-dir DIR] [--json] [--sample N] [--threads N]\n       \
         rvliw arch"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Code, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = parse_program(path, &text).map_err(|e| format!("{path}:{e}"))?;
    program.validate().map_err(|e| format!("{path}: {e}"))?;
    schedule_st200(&program).map_err(|e| format!("{path}: {e}"))
}

/// Parses `rN=value` argument overrides.
fn parse_regs(args: &[String]) -> Result<Vec<(Gpr, u32)>, String> {
    let mut out = Vec::new();
    for a in args {
        let (reg, val) = a
            .split_once('=')
            .ok_or_else(|| format!("bad register override `{a}` (want rN=value)"))?;
        let reg: Gpr = reg.parse().map_err(|e| format!("`{a}`: {e}"))?;
        let val = if let Some(hex) = val.strip_prefix("0x") {
            u32::from_str_radix(hex, 16).map_err(|e| format!("`{a}`: {e}"))?
        } else {
            val.parse::<i64>().map_err(|e| format!("`{a}`: {e}"))? as u32
        };
        out.push((reg, val));
    }
    Ok(out)
}

/// The per-bundle listing printed by `rvliw trace`.
fn print_bundle(cycle: u64, pc: usize, bundle: &Bundle) {
    let ops: Vec<String> = bundle.ops().iter().map(ToString::to_string).collect();
    println!("{cycle:>6} {pc:>4}  {}", ops.join("  ||  "));
}

fn execute(path: &str, rest: &[String], trace: bool) -> Result<(), String> {
    let mut regs: Vec<String> = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut fault_seed = 0u64;
    let mut fault_profile = FaultProfile::None;
    let mut substrate = Substrate::Vliw4;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                trace_out = Some(it.next().ok_or("--trace needs an output file")?.clone());
            }
            "--metrics-out" => {
                metrics_out = Some(
                    it.next()
                        .ok_or("--metrics-out needs an output file")?
                        .clone(),
                );
            }
            "--fault-seed" => {
                fault_seed = it
                    .next()
                    .ok_or("--fault-seed needs an integer")?
                    .parse::<u64>()
                    .map_err(|e| format!("--fault-seed: {e}"))?;
            }
            "--fault-profile" => {
                fault_profile = it
                    .next()
                    .ok_or("--fault-profile needs a profile name")?
                    .parse::<FaultProfile>()?;
            }
            "--backend" => {
                it.next()
                    .ok_or("--backend needs a backend name")?
                    .parse::<ExecBackend>()?
                    .set_process_default();
            }
            "--substrate" => {
                substrate = it
                    .next()
                    .ok_or("--substrate needs a substrate name")?
                    .parse::<Substrate>()?;
            }
            _ => regs.push(a.clone()),
        }
    }
    let code = load(path)?;
    // Salt the fault substreams with the program path so distinct programs
    // under the same seed draw independent perturbations.
    let mut m = SimSession::st200()
        .substrate(substrate)
        .fault_plan(FaultPlan::from_profile(fault_profile, fault_seed), path)
        .build();
    for &(r, v) in &parse_regs(&regs)? {
        m.set_gpr(r, v);
    }
    let before: Vec<u32> = (0..64).map(|i| m.gpr(Gpr::new(i))).collect();
    let mut chrome = trace_out.as_ref().map(|_| ChromeTracer::new());
    let mut counting = metrics_out.as_ref().map(|_| CountingTracer::new());
    let summary = match (chrome.as_mut(), counting.as_mut()) {
        (None, None) if trace => m.run_traced(&code, print_bundle),
        (None, None) => m.run(&code),
        (Some(c), None) if trace => m.run_traced_with_tracer(&code, print_bundle, c),
        (Some(c), None) => m.run_with_tracer(&code, c),
        (None, Some(k)) if trace => m.run_traced_with_tracer(&code, print_bundle, k),
        (None, Some(k)) => m.run_with_tracer(&code, k),
        (Some(c), Some(k)) => {
            let mut tee = TeeTracer::new(c, k);
            if trace {
                m.run_traced_with_tracer(&code, print_bundle, &mut tee)
            } else {
                m.run_with_tracer(&code, &mut tee)
            }
        }
    }
    .map_err(|e| format!("execution failed: {e}"))?;
    if let (Some(path), Some(c)) = (&trace_out, &chrome) {
        std::fs::write(path, c.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote Chrome trace ({} events) to {path}", c.len());
    }
    if let (Some(path), Some(k)) = (&metrics_out, &counting) {
        std::fs::write(path, k.to_metrics_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote metrics to {path}");
    }
    println!(
        "halted after {} cycles ({} ops, ipc {:.2}, D$ stalls {})",
        summary.cycles,
        summary.stats.ops,
        summary.stats.ipc(),
        summary.mem.d_stall_cycles
    );
    for i in 0..64u8 {
        let r = Gpr::new(i);
        let v = m.gpr(r);
        if v != before[i as usize] {
            println!("  {r} = {v} ({v:#x})");
        }
    }
    Ok(())
}

/// `rvliw sweep <spec.json>` (or `--spec <spec.json>`): expand a
/// declarative experiment spec and run its scenario matrix on the
/// deterministic parallel runner.
fn run_sweep(rest: &[String]) -> Result<(), String> {
    let mut path: Option<String> = None;
    let mut threads = rvliw::exp::default_threads();
    let mut frames: Option<usize> = None;
    let mut out_path: Option<String> = None;
    let mut pareto = false;
    let mut pareto_out: Option<String> = None;
    let mut cache_dir = rvliw::exp::default_cache_dir();
    let mut no_cache = false;
    let mut journal_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut max_retries = 0u32;
    let mut timeout_secs: Option<u64> = None;
    let mut metrics_out: Option<String> = None;
    let mut substrate: Option<Substrate> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spec" => {
                path = Some(it.next().ok_or("--spec needs a spec file")?.clone());
            }
            "--journal" => {
                journal_path = Some(it.next().ok_or("--journal needs an output file")?.clone());
            }
            "--resume" => {
                resume_path = Some(it.next().ok_or("--resume needs a journal file")?.clone());
            }
            "--max-retries" => {
                let v = it.next().ok_or("--max-retries needs an integer")?;
                max_retries = v.parse().map_err(|e| format!("--max-retries: {e}"))?;
            }
            "--timeout-secs" => {
                let v = it.next().ok_or("--timeout-secs needs a positive integer")?;
                let n: u64 = v.parse().map_err(|e| format!("--timeout-secs: {e}"))?;
                if n == 0 {
                    return Err("--timeout-secs: must be at least 1".to_owned());
                }
                timeout_secs = Some(n);
            }
            "--metrics-out" => {
                metrics_out = Some(
                    it.next()
                        .ok_or("--metrics-out needs an output file")?
                        .clone(),
                );
            }
            "--pareto" => pareto = true,
            "--pareto-out" => {
                pareto_out = Some(
                    it.next()
                        .ok_or("--pareto-out needs an output file")?
                        .clone(),
                );
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs an integer (0 = auto)")?;
                threads = rvliw::exp::parse_threads(v).map_err(|e| format!("--threads: {e}"))?;
            }
            "--frames" => {
                let v = it.next().ok_or("--frames needs a positive integer")?;
                let n = v.parse::<usize>().map_err(|e| format!("--frames: {e}"))?;
                if n == 0 {
                    return Err("--frames: must be at least 1".to_owned());
                }
                frames = Some(n);
            }
            "--out" => {
                out_path = Some(it.next().ok_or("--out needs an output file")?.clone());
            }
            "--cache-dir" => {
                cache_dir = Some(it.next().ok_or("--cache-dir needs a directory")?.into());
            }
            "--no-cache" => no_cache = true,
            "--backend" => {
                it.next()
                    .ok_or("--backend needs a backend name")?
                    .parse::<ExecBackend>()?
                    .set_process_default();
            }
            "--substrate" => {
                substrate = Some(
                    it.next()
                        .ok_or("--substrate needs a substrate name")?
                        .parse::<Substrate>()?,
                );
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(other.to_owned());
            }
            other => return Err(format!("unknown sweep argument `{other}`")),
        }
    }
    let path =
        path.ok_or("no spec file (pass a spec path, positionally or through --spec FILE)")?;
    let path = path.as_str();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut spec = ExperimentSpec::from_json_str(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(su) = substrate {
        spec.sweeps = spec
            .sweeps
            .into_iter()
            .map(|s| s.with_substrate_axis(vec![su]))
            .collect();
    }
    let sweep = Sweep::expand(spec).map_err(|e| format!("{path}: {e}"))?;
    let frames = frames.unwrap_or(sweep.spec().frames);
    eprintln!(
        "encoding {frames}-frame workload, then {} scenarios on {threads} thread(s)",
        sweep.scenarios().len()
    );
    // The 25-frame paper workload is cached process-wide; anything else is
    // encoded fresh for this run.
    let (workload, workload_kind) = if frames == 25 {
        ((*Workload::paper_shared()).clone(), "paper")
    } else {
        (Workload::qcif_frames(frames), "qcif")
    };
    let cache = match cache_dir.filter(|_| !no_cache) {
        Some(dir) => {
            Some(ScenarioCache::open(dir, &workload, workload_kind).map_err(|e| e.to_string())?)
        }
        None => None,
    };
    let config = SupervisorConfig {
        max_retries,
        timeout: timeout_secs.map(std::time::Duration::from_secs),
        journal: match &journal_path {
            Some(p) => Some(Journal::open(p).map_err(|e| format!("--journal {p}: {e}"))?),
            None => None,
        },
        resume: match &resume_path {
            Some(p) => Journal::load(p).map_err(|e| format!("--resume {p}: {e}"))?,
            None => std::collections::BTreeMap::new(),
        },
    };
    let supervised = config.is_active();
    let (outcome, health) = sweep.run_supervised(
        &workload,
        threads,
        |label| eprintln!("  running {label}"),
        cache.as_ref(),
        &config,
    );
    print!("{outcome}");
    // Cross-substrate sweeps get a per-scenario cycle-ratio table: each
    // alternate-substrate row against its default-substrate twin.
    let ratios = outcome.substrate_ratios();
    if !ratios.is_empty() {
        println!("Substrate cycle ratios (alternate vs vliw4):");
        println!(
            "{:<24} {:>10} {:>12} {:>12} {:>8}",
            "Scenario", "Substrate", "VliwCycles", "SubCycles", "Ratio"
        );
        for r in &ratios {
            println!(
                "{:<24} {:>10} {:>12} {:>12} {:>8.2}",
                r.label,
                r.substrate,
                r.vliw_cycles,
                r.substrate_cycles,
                r.ratio()
            );
        }
    }
    let summary = run_summary(
        cache.as_ref().map(ScenarioCache::counts).as_ref(),
        supervised.then_some(&health),
    );
    if !summary.is_empty() {
        eprintln!("{summary}");
    }
    if let Some(mpath) = metrics_out {
        let mut m = std::collections::BTreeMap::new();
        if let Some(cache) = &cache {
            m.insert("cache".to_owned(), cache.counts().to_json());
        }
        m.insert("health".to_owned(), health.to_json());
        std::fs::write(&mpath, Json::Obj(m).to_string()).map_err(|e| format!("{mpath}: {e}"))?;
        eprintln!("wrote run metrics to {mpath}");
    }
    if let Some(out_path) = out_path {
        std::fs::write(&out_path, outcome.to_json_string())
            .map_err(|e| format!("{out_path}: {e}"))?;
        eprintln!("wrote result matrix to {out_path}");
    }
    if pareto || pareto_out.is_some() {
        let partition = outcome.pareto();
        if pareto {
            print!("{}", partition.to_json_string());
        }
        if let Some(pp) = pareto_out {
            std::fs::write(&pp, partition.to_json_string()).map_err(|e| format!("{pp}: {e}"))?;
            eprintln!("wrote Pareto partition to {pp}");
        }
    }
    if outcome.is_complete() {
        Ok(())
    } else {
        let labels: Vec<String> = outcome.failures().map(ToString::to_string).collect();
        Err(format!(
            "{} scenario(s) failed:\n  {}",
            labels.len(),
            labels.join("\n  ")
        ))
    }
}

/// `rvliw explore <spec.json>` (or `--spec <spec.json>`): run a budgeted
/// design-space search over an explore spec and print the Pareto-front
/// JSON on stdout. Progress and cache/health summaries go to stderr so
/// stdout stays byte-stable for a fixed seed.
fn run_explore_cmd(rest: &[String]) -> Result<(), String> {
    let mut path: Option<String> = None;
    let mut seed = 0u64;
    let mut threads = rvliw::exp::default_threads();
    let mut frames: Option<usize> = None;
    let mut out_path: Option<String> = None;
    let mut cache_dir = rvliw::exp::default_cache_dir();
    let mut no_cache = false;
    let mut journal_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut max_retries = 0u32;
    let mut timeout_secs: Option<u64> = None;
    let mut metrics_out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spec" => {
                path = Some(it.next().ok_or("--spec needs a spec file")?.clone());
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs an integer")?;
                seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs an integer (0 = auto)")?;
                threads = rvliw::exp::parse_threads(v).map_err(|e| format!("--threads: {e}"))?;
            }
            "--frames" => {
                let v = it.next().ok_or("--frames needs a positive integer")?;
                let n = v.parse::<usize>().map_err(|e| format!("--frames: {e}"))?;
                if n == 0 {
                    return Err("--frames: must be at least 1".to_owned());
                }
                frames = Some(n);
            }
            "--out" => {
                out_path = Some(it.next().ok_or("--out needs an output file")?.clone());
            }
            "--cache-dir" => {
                cache_dir = Some(it.next().ok_or("--cache-dir needs a directory")?.into());
            }
            "--no-cache" => no_cache = true,
            "--backend" => {
                it.next()
                    .ok_or("--backend needs a backend name")?
                    .parse::<ExecBackend>()?
                    .set_process_default();
            }
            "--journal" => {
                journal_path = Some(it.next().ok_or("--journal needs an output file")?.clone());
            }
            "--resume" => {
                resume_path = Some(it.next().ok_or("--resume needs a journal file")?.clone());
            }
            "--max-retries" => {
                let v = it.next().ok_or("--max-retries needs an integer")?;
                max_retries = v.parse().map_err(|e| format!("--max-retries: {e}"))?;
            }
            "--timeout-secs" => {
                let v = it.next().ok_or("--timeout-secs needs a positive integer")?;
                let n: u64 = v.parse().map_err(|e| format!("--timeout-secs: {e}"))?;
                if n == 0 {
                    return Err("--timeout-secs: must be at least 1".to_owned());
                }
                timeout_secs = Some(n);
            }
            "--metrics-out" => {
                metrics_out = Some(
                    it.next()
                        .ok_or("--metrics-out needs an output file")?
                        .clone(),
                );
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(other.to_owned());
            }
            other => return Err(format!("unknown explore argument `{other}`")),
        }
    }
    let path =
        path.ok_or("no spec file (pass a spec path, positionally or through --spec FILE)")?;
    let path = path.as_str();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut spec = ExploreSpec::from_json_str(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(frames) = frames {
        spec.frames = frames;
    }
    eprintln!(
        "exploring {} ({} design points, budget {}, strategy {}, seed {seed}) on {threads} \
         thread(s)",
        spec.name,
        spec.space.size(),
        spec.budget,
        spec.strategy.token()
    );
    let (workload, workload_kind) = if spec.frames == 25 {
        ((*Workload::paper_shared()).clone(), "paper")
    } else {
        (Workload::qcif_frames(spec.frames), "qcif")
    };
    let cache = match cache_dir.filter(|_| !no_cache) {
        Some(dir) => {
            Some(ScenarioCache::open(dir, &workload, workload_kind).map_err(|e| e.to_string())?)
        }
        None => None,
    };
    let config = SupervisorConfig {
        max_retries,
        timeout: timeout_secs.map(std::time::Duration::from_secs),
        journal: match &journal_path {
            Some(p) => Some(Journal::open(p).map_err(|e| format!("--journal {p}: {e}"))?),
            None => None,
        },
        resume: match &resume_path {
            Some(p) => Journal::load(p).map_err(|e| format!("--resume {p}: {e}"))?,
            None => std::collections::BTreeMap::new(),
        },
    };
    let outcome = run_explore(
        &spec,
        seed,
        &workload,
        threads,
        |label| eprintln!("  evaluating {label}"),
        cache.as_ref(),
        &config,
    );
    print!("{}", outcome.to_json_string());
    eprintln!(
        "explored {} point(s) ({} revisits, {} failures): {} on the frontier",
        outcome.evaluations,
        outcome.revisits,
        outcome.failures.len(),
        outcome.frontier.len()
    );
    let summary = run_summary(cache.as_ref().map(ScenarioCache::counts).as_ref(), None);
    if !summary.is_empty() {
        eprintln!("{summary}");
    }
    if let Some(mpath) = metrics_out {
        let mut m = std::collections::BTreeMap::new();
        if let Some(cache) = &cache {
            m.insert("cache".to_owned(), cache.counts().to_json());
        }
        m.insert(
            "evaluations".to_owned(),
            Json::Num(outcome.evaluations.to_string()),
        );
        m.insert(
            "revisits".to_owned(),
            Json::Num(outcome.revisits.to_string()),
        );
        std::fs::write(&mpath, Json::Obj(m).to_string()).map_err(|e| format!("{mpath}: {e}"))?;
        eprintln!("wrote run metrics to {mpath}");
    }
    if let Some(out_path) = out_path {
        std::fs::write(&out_path, outcome.to_json_string())
            .map_err(|e| format!("{out_path}: {e}"))?;
        eprintln!("wrote outcome to {out_path}");
    }
    Ok(())
}

/// `rvliw cache <stats|clear|verify>`: inspect, empty or spot-check the
/// scenario result cache. The cache directory comes from `--cache-dir` or
/// the `RVLIW_CACHE_DIR` environment variable.
fn run_cache(cmd: &str, rest: &[String]) -> Result<(), String> {
    let mut dir = rvliw::exp::default_cache_dir();
    let mut sample = 4usize;
    let mut threads = rvliw::exp::default_threads();
    let mut json = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cache-dir" => {
                dir = Some(it.next().ok_or("--cache-dir needs a directory")?.into());
            }
            "--json" => json = true,
            "--sample" => {
                let v = it.next().ok_or("--sample needs a positive integer")?;
                sample = v.parse().map_err(|e| format!("--sample: {e}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs an integer (0 = auto)")?;
                threads = rvliw::exp::parse_threads(v).map_err(|e| format!("--threads: {e}"))?;
            }
            other => return Err(format!("unknown cache argument `{other}`")),
        }
    }
    let dir = dir.ok_or("no cache directory (pass --cache-dir or set RVLIW_CACHE_DIR)")?;
    match cmd {
        "stats" => {
            let store = rvliw::cache::ResultCache::open(&dir).map_err(|e| e.to_string())?;
            let (entries, bad) = store.entries().map_err(|e| e.to_string())?;
            for e in &bad {
                eprintln!("warning: {e}");
            }
            let bytes: u64 = entries
                .iter()
                .filter_map(|e| std::fs::metadata(&e.path).ok())
                .map(|m| m.len())
                .sum();
            let quarantined = store.quarantined_entries();
            let quarantine_bytes: u64 = quarantined
                .iter()
                .filter_map(|p| std::fs::metadata(p).ok())
                .map(|m| m.len())
                .sum();
            if json {
                let mut m = std::collections::BTreeMap::new();
                m.insert("cache_dir".to_owned(), Json::Str(dir.display().to_string()));
                m.insert("entries".to_owned(), Json::Num(entries.len().to_string()));
                m.insert("bytes".to_owned(), Json::Num(bytes.to_string()));
                m.insert("unreadable".to_owned(), Json::Num(bad.len().to_string()));
                m.insert(
                    "quarantined".to_owned(),
                    Json::Num(quarantined.len().to_string()),
                );
                m.insert(
                    "quarantine_bytes".to_owned(),
                    Json::Num(quarantine_bytes.to_string()),
                );
                println!("{}", Json::Obj(m));
            } else {
                println!("cache dir: {}", dir.display());
                println!(
                    "entries={} bytes={} unreadable={} quarantined={} quarantine_bytes={}",
                    entries.len(),
                    bytes,
                    bad.len(),
                    quarantined.len(),
                    quarantine_bytes
                );
            }
            Ok(())
        }
        "clear" => {
            let store = rvliw::cache::ResultCache::open(&dir).map_err(|e| e.to_string())?;
            let removed = store.clear().map_err(|e| e.to_string())?;
            println!("removed {removed} file(s) from {}", dir.display());
            Ok(())
        }
        "verify" => {
            let report =
                rvliw::exp::verify_cache(&dir, sample, threads).map_err(|e| e.to_string())?;
            println!("{report}");
            if report.is_clean() {
                Ok(())
            } else {
                for d in &report.divergent {
                    eprintln!("rvliw: {d}");
                }
                Err(format!(
                    "{} divergent cache entr{}",
                    report.divergent.len(),
                    if report.divergent.len() == 1 {
                        "y"
                    } else {
                        "ies"
                    }
                ))
            }
        }
        other => Err(format!(
            "unknown cache command `{other}` (want stats, clear or verify)"
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("arch") => {
            println!(
                "{}",
                arch::describe(&MachineConfig::st200(), &MemConfig::st200())
            );
            Ok(())
        }
        Some("asm") => match args.get(1) {
            Some(path) => load(path).map(|code| println!("{}", code.disassemble())),
            None => return usage(),
        },
        Some(cmd @ ("run" | "trace")) => match args.get(1) {
            Some(path) => execute(path, &args[2..], cmd == "trace"),
            None => return usage(),
        },
        Some("sweep") => match args.get(1) {
            Some(_) => run_sweep(&args[1..]),
            None => return usage(),
        },
        Some("explore") => match args.get(1) {
            Some(_) => run_explore_cmd(&args[1..]),
            None => return usage(),
        },
        Some("cache") => match args.get(1) {
            Some(cmd) => run_cache(cmd, &args[2..]),
            None => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rvliw: {e}");
            ExitCode::FAILURE
        }
    }
}
