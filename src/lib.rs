#![warn(missing_docs)]
//! # rvliw — Reconfigurable-VLIW architecture exploration toolkit
//!
//! A from-scratch reproduction of *"A Video Compression Case Study on a
//! Reconfigurable VLIW Architecture"* (Rizzo & Colavin, DATE 2002): an
//! ST200/Lx-like 4-issue VLIW core tightly coupled with a run-time
//! Reconfigurable Functional Unit (RFU), evaluated on the motion-estimation
//! stage of an MPEG-4 simple-profile video encoder.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`isa`] — the instruction-set model (registers, opcodes, bundles).
//! * [`asm`] — assembler DSL and resource-constrained list scheduler.
//! * [`mem`] — memory hierarchy (caches, prefetch buffer, bus timing).
//! * [`rfu`] — the RFU model (configurations, line buffers, prefetch engine,
//!   pipelined kernel-loop timing, technology scaling).
//! * [`sim`] — the cycle-level VLIW simulator.
//! * [`trace`] — structured tracing (stall causes, cache/RFU events,
//!   Chrome `trace_event` export, per-PC histograms).
//! * [`mpeg4`] — MPEG-4 encoder substrate (synthetic sequences, motion
//!   estimation, DCT/quantization/entropy coding).
//! * [`kernels`] — the `GetSad` kernels as VLIW programs (ORIG, A1–A3,
//!   loop-level drivers).
//! * [`fault`] — deterministic seeded fault injection (latency jitter,
//!   spurious flushes, delayed/stuck line-buffer rows, bit flips).
//! * [`cache`] — content-addressed, on-disk scenario result cache
//!   (incremental sweeps; see EXPERIMENTS.md § "Caching and incremental
//!   sweeps").
//! * [`exp`] — the experiment driver regenerating the paper's Tables 1–7.
//!
//! ## Quickstart
//!
//! ```
//! use rvliw::exp::{Scenario, ScenarioError, Workload};
//!
//! # fn main() -> Result<(), ScenarioError> {
//! // A small workload keeps doc-tests fast; experiments use 25 frames.
//! let workload = Workload::tiny();
//! let orig = rvliw::exp::run_me(&Scenario::orig(), &workload)?;
//! let a3 = rvliw::exp::run_me(&Scenario::a3(), &workload)?;
//! assert!(a3.me_cycles < orig.me_cycles);
//! # Ok(())
//! # }
//! ```

pub use mpeg4_enc as mpeg4;
pub use rvliw_asm as asm;
pub use rvliw_cache as cache;
pub use rvliw_core as exp;
pub use rvliw_fault as fault;
pub use rvliw_isa as isa;
pub use rvliw_kernels as kernels;
pub use rvliw_mem as mem;
pub use rvliw_rfu as rfu;
pub use rvliw_sim as sim;
pub use rvliw_trace as trace;
