//! Property tests on the ISA layer: SIMD semantics against scalar
//! references, and lossless operation encoding.

use proptest::prelude::*;

use rvliw::isa::{decode_op, encode_op, simd, Br, Dest, Gpr, Op, Opcode, Src};

fn bytes(x: u32) -> [u8; 4] {
    x.to_le_bytes()
}

proptest! {
    #[test]
    fn sad4_equals_scalar_sum(a in any::<u32>(), b in any::<u32>()) {
        let expect: u32 = bytes(a)
            .iter()
            .zip(bytes(b))
            .map(|(&x, y)| u32::from(x.abs_diff(y)))
            .sum();
        prop_assert_eq!(simd::sad4(a, b), expect);
    }

    #[test]
    fn avg4r_is_exact_rounded_mean(a in any::<u32>(), b in any::<u32>()) {
        let out = bytes(simd::avg4r(a, b));
        for (i, &o) in out.iter().enumerate() {
            let e = (u16::from(bytes(a)[i]) + u16::from(bytes(b)[i]) + 1) >> 1;
            prop_assert_eq!(u16::from(o), e);
        }
    }

    #[test]
    fn add4_sub4_are_inverses(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(simd::sub4(simd::add4(a, b), b), a);
    }

    #[test]
    fn saturating_ops_bound_results(a in any::<u32>(), b in any::<u32>()) {
        let add = bytes(simd::adds4u(a, b));
        let sub = bytes(simd::subs4u(a, b));
        for i in 0..4 {
            prop_assert!(u16::from(add[i]) >= u16::from(bytes(a)[i].max(bytes(b)[i])));
            prop_assert!(sub[i] <= bytes(a)[i]);
        }
    }

    #[test]
    fn a1_composite_is_exact_diagonal(
        wy in any::<u32>(), wyn in any::<u32>(),
        wy1 in any::<u32>(), wy1n in any::<u32>(),
    ) {
        // avgh4/lsbh4/rfix4/dadj4 compose to the exact MPEG-4 diagonal.
        let out = bytes(simd::dadj4(
            simd::avgh4(wy, wyn),
            simd::avgh4(wy1, wy1n),
            simd::rfix4(simd::lsbh4(wy, wyn), simd::lsbh4(wy1, wy1n)),
        ));
        let mut w = [0u16; 5];
        let mut w1 = [0u16; 5];
        for i in 0..4 {
            w[i] = u16::from(bytes(wy)[i]);
            w1[i] = u16::from(bytes(wy1)[i]);
        }
        w[4] = u16::from(bytes(wyn)[0]);
        w1[4] = u16::from(bytes(wy1n)[0]);
        for i in 0..4 {
            let exact = ((w[i] + w[i + 1] + w1[i] + w1[i + 1] + 2) >> 2) as u8;
            prop_assert_eq!(out[i], exact, "pixel {}", i);
        }
    }

    #[test]
    fn hadd2_rnd2_composite_is_exact_diagonal(
        ay in any::<u32>(), by in any::<u32>(),
        ay1 in any::<u32>(), by1 in any::<u32>(),
        k in 0u32..6,
    ) {
        let s = simd::hadd2(ay, by, k).wrapping_add(simd::hadd2(ay1, by1, k));
        let out = simd::rnd2(s);
        let win = |a: u32, b: u32, i: usize| -> u16 {
            let all = [
                bytes(a)[0], bytes(a)[1], bytes(a)[2], bytes(a)[3],
                bytes(b)[0], bytes(b)[1], bytes(b)[2], bytes(b)[3],
            ];
            u16::from(all[i])
        };
        for lane in 0..2usize {
            let p = k as usize + lane;
            let exact = ((win(ay, by, p) + win(ay, by, p + 1)
                + win(ay1, by1, p) + win(ay1, by1, p + 1) + 2) >> 2) as u32;
            prop_assert_eq!((out >> (16 * lane)) & 0xff, exact);
        }
    }

    #[test]
    fn shift_semantics_match_spec(a in any::<u32>(), n in 0u32..64) {
        prop_assert_eq!(simd::sll(a, n), if n >= 32 { 0 } else { a << n });
        prop_assert_eq!(simd::srl(a, n), if n >= 32 { 0 } else { a >> n });
        let expect_sra = if n >= 32 { ((a as i32) >> 31) as u32 } else { ((a as i32) >> n) as u32 };
        prop_assert_eq!(simd::sra(a, n), expect_sra);
    }
}

/// Strategy producing arbitrary well-formed operations.
fn arb_op() -> impl Strategy<Value = Op> {
    let opcode = (0..Opcode::all().len()).prop_map(|i| Opcode::all()[i]);
    let dest = prop_oneof![
        Just(Dest::None),
        (0u8..64).prop_map(|r| Dest::Gpr(Gpr::new(r))),
        (0u8..8).prop_map(|b| Dest::Br(Br::new(b))),
    ];
    let src = prop_oneof![
        (0u8..64).prop_map(|r| Src::Gpr(Gpr::new(r))),
        (0u8..8).prop_map(|b| Src::Br(Br::new(b))),
        any::<i32>().prop_map(Src::Imm),
    ];
    let srcs = proptest::collection::vec(src, 0..8);
    let cfg = proptest::option::of(any::<u16>());
    let target = proptest::option::of(any::<u32>());
    (opcode, dest, srcs, cfg, target).prop_map(|(opcode, dest, srcs, cfg, target)| {
        let mut op = Op::new(opcode, dest, &srcs);
        op.cfg = cfg;
        op.target = target;
        op
    })
}

proptest! {
    #[test]
    fn op_encoding_roundtrips(op in arb_op()) {
        let mut words = Vec::new();
        encode_op(&op, &mut words);
        let (decoded, used) = decode_op(&words).expect("decodes");
        prop_assert_eq!(used, words.len());
        prop_assert_eq!(decoded, op);
    }

    #[test]
    fn op_streams_decode_sequentially(ops in proptest::collection::vec(arb_op(), 1..20)) {
        let mut words = Vec::new();
        for op in &ops {
            encode_op(op, &mut words);
        }
        let mut pos = 0;
        for op in &ops {
            let (decoded, used) = decode_op(&words[pos..]).expect("decodes");
            prop_assert_eq!(&decoded, op);
            pos += used;
        }
        prop_assert_eq!(pos, words.len());
    }
}
