//! Property tests on the RFU model: functional exactness of the custom
//! interpolation instructions and timing monotonicity of the kernel loop.

use proptest::prelude::*;

use rvliw::mem::{MemConfig, MemorySystem};
use rvliw::mpeg4::sad::{self, InterpKind};
use rvliw::mpeg4::Plane;
use rvliw::rfu::{cfgs, unit, InterpMode, MeLoopCfg, Rfu, RfuBandwidth};

/// Scalar reference for the diagonal interpolation of one pixel.
fn diag_ref(p00: u8, p01: u8, p10: u8, p11: u8) -> u8 {
    ((u16::from(p00) + u16::from(p01) + u16::from(p10) + u16::from(p11) + 2) >> 2) as u8
}

proptest! {
    /// `diag4` equals the scalar reference for every alignment and window.
    #[test]
    fn diag4_is_exact(words in proptest::array::uniform4(any::<u32>()), align in 0u32..4) {
        let out = unit::diag4(words, align).to_le_bytes();
        let row = |w0: u32, w1: u32| {
            let mut b = [0u8; 8];
            b[..4].copy_from_slice(&w0.to_le_bytes());
            b[4..].copy_from_slice(&w1.to_le_bytes());
            b
        };
        let y = row(words[0], words[1]);
        let y1 = row(words[2], words[3]);
        let a = align as usize;
        for i in 0..4 {
            prop_assert_eq!(out[i], diag_ref(y[a + i], y[a + i + 1], y1[a + i], y1[a + i + 1]));
        }
    }

    /// `diag16` agrees with four `diag4` windows over the same rows.
    #[test]
    fn diag16_decomposes_into_diag4(
        y in proptest::array::uniform5(any::<u32>()),
        y1 in proptest::array::uniform5(any::<u32>()),
        align in 0u32..4,
    ) {
        let full = unit::diag16(y, y1, align);
        for g in 0..4usize {
            let part = unit::diag4([y[g], y[g + 1], y1[g], y1[g + 1]], align);
            prop_assert_eq!(full[g], part, "group {}", g);
        }
    }

    /// Static latency is monotone in β and anti-monotone in bandwidth, and
    /// the β=1→5 increase is the paper's fixed 12 cycles for every
    /// bandwidth.
    #[test]
    fn static_latency_monotonicity(beta in 1u64..6, stride in 64u32..512) {
        let lats: Vec<u64> = RfuBandwidth::all()
            .into_iter()
            .map(|bw| MeLoopCfg::new(bw, beta, stride).static_latency())
            .collect();
        prop_assert!(lats[0] > lats[1] && lats[1] > lats[2]);
        for bw in RfuBandwidth::all() {
            let l1 = MeLoopCfg::new(bw, 1, stride).static_latency();
            let l5 = MeLoopCfg::new(bw, 5, stride).static_latency();
            prop_assert_eq!(l5 - l1, 12);
            let lb = MeLoopCfg::new(bw, beta, stride).static_latency();
            let lb_next = MeLoopCfg::new(bw, beta + 1, stride).static_latency();
            prop_assert!(lb_next > lb);
        }
    }

    /// The ME loop's functional SAD never depends on timing state: cold
    /// caches, warm caches and prefetched line buffers all return the same
    /// value.
    #[test]
    fn meloop_sad_is_timing_independent(
        seed in any::<u32>(),
        cand_off in 0u32..80,
        interp in 0u32..4,
    ) {
        let stride = 176u32;
        let fill = |m: &mut MemorySystem| -> (u32, u32) {
            let frame = m.ram.alloc(stride * 120, 32);
            for i in 0..stride * 80 {
                let v = i.wrapping_mul(2_654_435_761).wrapping_add(seed);
                m.ram.store8(frame + i, (v >> 24) as u8);
            }
            (frame + 32 * stride + 48, frame + 20 * stride + 16 + cand_off)
        };
        let run = |prefetch: bool| -> u32 {
            let mut m = MemorySystem::new(MemConfig::st200_loop_level());
            let (ref_addr, cand) = fill(&mut m);
            let mut rfu = Rfu::with_case_study_configs(
                MeLoopCfg::new(RfuBandwidth::B1x32, 1, stride).with_line_buffer_b(),
            );
            if prefetch {
                rfu.pref(cfgs::PREF_REF, ref_addr, &mut m, 0).unwrap();
                rfu.pref(cfgs::PREF_CAND_LBB, cand, &mut m, 0).unwrap();
            }
            rfu.exec(cfgs::ME_LOOP, &[cand, interp, ref_addr], &mut m, 500)
                .unwrap()
                .value
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// Differential test against the scalar golden model: for every RFU
    /// bandwidth, technology scaling β and interpolation mode (including
    /// all three half-sample paths), the kernel loop's SAD equals
    /// `mpeg4::sad::get_sad` on the same pixels — with the plain cache
    /// path and with the Line Buffer B path.
    #[test]
    fn meloop_sad_matches_scalar_golden_model(
        seed in any::<u32>(),
        rx in 0usize..160,
        ry in 0usize..79,
        cx in 0usize..159,
        cy in 0usize..79,
        interp in 0u32..4,
    ) {
        let stride = 176usize;
        let height = 96usize;
        let kind = match interp {
            0 => InterpKind::None,
            1 => InterpKind::H,
            2 => InterpKind::V,
            _ => InterpKind::Diag,
        };
        let mut plane = Plane::new(stride, height);
        for y in 0..height {
            for x in 0..stride {
                let i = (y * stride + x) as u32;
                let v = i.wrapping_mul(2_654_435_761).wrapping_add(seed);
                plane.set(x, y, (v >> 24) as u8);
            }
        }
        let golden = sad::get_sad(&plane, rx, ry, &plane, cx, cy, kind);

        // One memory image shared by every configuration: the SAD is
        // functional, so cache state carried between runs cannot matter
        // (`meloop_sad_is_timing_independent` guards that separately).
        let mut m = MemorySystem::new(MemConfig::st200_loop_level());
        let frame = m.ram.alloc((stride * height) as u32, 32);
        for (i, &b) in plane.data().iter().enumerate() {
            m.ram.store8(frame + i as u32, b);
        }
        let ref_addr = frame + (ry * stride + rx) as u32;
        let cand = frame + (cy * stride + cx) as u32;

        for bw in RfuBandwidth::all() {
            for beta in [1u64, 5] {
                for use_lbb in [false, true] {
                    let cfg = MeLoopCfg::new(bw, beta, stride as u32);
                    let cfg = if use_lbb { cfg.with_line_buffer_b() } else { cfg };
                    let mut rfu = Rfu::with_case_study_configs(cfg);
                    rfu.pref(cfgs::PREF_REF, ref_addr, &mut m, 0).unwrap();
                    let pref_cfg = if use_lbb { cfgs::PREF_CAND_LBB } else { cfgs::PREF_CAND };
                    rfu.pref(pref_cfg, cand, &mut m, 0).unwrap();
                    let got = rfu
                        .exec(cfgs::ME_LOOP, &[cand, interp, ref_addr], &mut m, 400)
                        .unwrap()
                        .value;
                    prop_assert_eq!(
                        got, golden,
                        "bw {:?} beta {} lbb {} interp {:?}", bw, beta, use_lbb, kind
                    );
                }
            }
        }
    }

    /// Prefetching a candidate never increases the loop's stall cycles.
    #[test]
    fn prefetch_never_hurts(seed in any::<u32>(), cand_off in 0u32..60) {
        let stride = 176u32;
        let run = |prefetch: bool| -> u64 {
            let mut m = MemorySystem::new(MemConfig::st200_loop_level());
            let frame = m.ram.alloc(stride * 120, 32);
            for i in 0..stride * 60 {
                m.ram.store8(frame + i, (i.wrapping_add(seed) % 251) as u8);
            }
            let ref_addr = frame + 32 * stride + 48;
            let cand = frame + 10 * stride + 16 + cand_off;
            let mut rfu = Rfu::with_case_study_configs(MeLoopCfg::new(
                RfuBandwidth::B1x32,
                1,
                stride,
            ));
            rfu.pref(cfgs::PREF_REF, ref_addr, &mut m, 0).unwrap();
            if prefetch {
                rfu.pref(cfgs::PREF_CAND, cand, &mut m, 0).unwrap();
            }
            rfu.exec(
                cfgs::ME_LOOP,
                &[cand, InterpMode::Diag.to_bits(), ref_addr],
                &mut m,
                10_000,
            )
            .unwrap()
            .stall
        };
        prop_assert!(run(true) <= run(false));
    }
}
