//! Property tests on the MPEG-4 substrate: transform/entropy round trips,
//! quantizer error bounds and motion-search optimality relations.

use proptest::prelude::*;

use rvliw::mpeg4::bitstream::{BitReader, BitWriter};
use rvliw::mpeg4::dct::{fdct, idct};
use rvliw::mpeg4::me::{MotionSearch, SearchAlgorithm};
use rvliw::mpeg4::quant::{dequant_inter, quant_inter};
use rvliw::mpeg4::rlc::{read_block, write_block};
use rvliw::mpeg4::sad::{get_sad, InterpKind};
use rvliw::mpeg4::types::{Mv, Plane};
use rvliw::mpeg4::zigzag::{scan, unscan};

fn arb_block() -> impl Strategy<Value = [i32; 64]> {
    proptest::collection::vec(-255i32..=255, 64).prop_map(|v| {
        let mut b = [0i32; 64];
        b.copy_from_slice(&v);
        b
    })
}

fn arb_plane(w: usize, h: usize) -> impl Strategy<Value = Plane> {
    proptest::collection::vec(any::<u8>(), w * h).prop_map(move |data| Plane::from_data(w, h, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// fdct/idct round-trips within ±1 per coefficient (rounding only).
    #[test]
    fn dct_roundtrip(block in arb_block()) {
        let rec = idct(&fdct(&block));
        for i in 0..64 {
            prop_assert!((rec[i] - block[i]).abs() <= 1, "idx {}: {} vs {}", i, rec[i], block[i]);
        }
    }

    /// Zig-zag is a self-inverting permutation pair.
    #[test]
    fn zigzag_roundtrip(block in arb_block()) {
        prop_assert_eq!(unscan(&scan(&block)), block);
        prop_assert_eq!(scan(&unscan(&block)), block);
    }

    /// Quantizer reconstruction error is bounded by ~2.5·q per coefficient.
    #[test]
    fn quant_error_bounded(block in arb_block(), q in 1i32..=31) {
        let rec = dequant_inter(&quant_inter(&block, q), q);
        for i in 0..64 {
            prop_assert!(
                (rec[i] - block[i]).abs() <= 2 * q + q / 2 + 1,
                "idx {}: {} vs {} at q {}",
                i, rec[i], block[i], q
            );
        }
    }

    /// Run-level + exp-Golomb coding decodes to the original block.
    #[test]
    fn block_bitstream_roundtrip(blocks in proptest::collection::vec(arb_block(), 1..6)) {
        let mut w = BitWriter::new();
        for b in &blocks {
            write_block(&mut w, b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for b in &blocks {
            prop_assert_eq!(read_block(&mut r), Some(*b));
        }
    }

    /// Exp-Golomb signed/unsigned round trips for arbitrary interleavings.
    #[test]
    fn exp_golomb_roundtrip(values in proptest::collection::vec(any::<i16>(), 1..100)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_se(i32::from(v));
            w.put_ue(v.unsigned_abs().into());
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.get_se(), Some(i32::from(v)));
            prop_assert_eq!(r.get_ue(), Some(u32::from(v.unsigned_abs())));
        }
    }

    /// The full search is optimal: no other algorithm finds a strictly
    /// better integer SAD within the same range.
    #[test]
    fn full_search_is_optimal(prev in arb_plane(64, 48), cur in arb_plane(64, 48)) {
        let full = MotionSearch {
            algorithm: SearchAlgorithm::Full { range: 6 },
            half_sample: false,
            approx: rvliw::mpeg4::ApproxSad::Exact,
        };
        let diamond = MotionSearch {
            algorithm: SearchAlgorithm::Diamond,
            half_sample: false,
            approx: rvliw::mpeg4::ApproxSad::Exact,
        };
        let f = full.search_mb(&cur, &prev, 1, 1, Mv::default());
        let d = diamond.search_mb(&cur, &prev, 1, 1, Mv::default());
        // Diamond may wander beyond ±6, so only assert when its result is
        // within the full-search range.
        let (dx, dy) = d.mv.int_part();
        if dx.abs() <= 6 && dy.abs() <= 6 {
            prop_assert!(f.best_sad <= d.best_sad, "full {} > diamond {}", f.best_sad, d.best_sad);
        }
    }

    /// Every SAD recorded in a search trace matches the golden `get_sad`.
    #[test]
    fn trace_is_self_consistent(prev in arb_plane(64, 48), cur in arb_plane(64, 48)) {
        let ms = MotionSearch::default();
        let m = ms.search_mb(&cur, &prev, 1, 1, Mv::default());
        for c in &m.calls {
            prop_assert_eq!(c.sad, get_sad(&cur, 16, 16, &prev, c.cx, c.cy, c.kind));
        }
        // The reported best is the minimum of the trace.
        let min = m.calls.iter().map(|c| c.sad).min().unwrap();
        prop_assert_eq!(m.best_sad, min);
    }

    /// Half-sample refinement never worsens the SAD.
    #[test]
    fn half_sample_never_hurts(prev in arb_plane(64, 48), cur in arb_plane(64, 48)) {
        let int_only = MotionSearch {
            algorithm: SearchAlgorithm::Diamond,
            half_sample: false,
            approx: rvliw::mpeg4::ApproxSad::Exact,
        };
        let with_half = MotionSearch {
            algorithm: SearchAlgorithm::Diamond,
            half_sample: true,
            approx: rvliw::mpeg4::ApproxSad::Exact,
        };
        let a = int_only.search_mb(&cur, &prev, 1, 1, Mv::default());
        let b = with_half.search_mb(&cur, &prev, 1, 1, Mv::default());
        prop_assert!(b.best_sad <= a.best_sad);
    }

    /// SAD is a metric-like form: zero iff the (interpolated) blocks match,
    /// and symmetric under swapping for integer candidates.
    #[test]
    fn sad_zero_on_self(p in arb_plane(64, 48)) {
        prop_assert_eq!(get_sad(&p, 16, 16, &p, 16, 16, InterpKind::None), 0);
    }
}
