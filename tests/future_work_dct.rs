//! Cross-crate verification of the future-work DCT offload: the software
//! VLIW kernel, the RFU datapath and the encoder's fixed-point reference
//! must be bit-identical.

use proptest::prelude::*;

use rvliw::isa::MachineConfig;
use rvliw::kernels::dct::{build_dct, DCT_ARG_DST, DCT_ARG_SCRATCH, DCT_ARG_SRC};
use rvliw::mpeg4::dct::fdct_fixed;
use rvliw::rfu::{cfgs, dct::fdct_fixed_rfu, MeLoopCfg, Rfu, RfuBandwidth};
use rvliw::sim::Machine;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The RFU datapath's transform equals the encoder's reference for
    /// arbitrary residual blocks.
    #[test]
    fn rfu_dct_matches_encoder_reference(vals in proptest::collection::vec(-255i32..=255, 64)) {
        let mut block = [0i32; 64];
        block.copy_from_slice(&vals);
        prop_assert_eq!(fdct_fixed_rfu(&block), fdct_fixed(&block));
    }
}

#[test]
fn vliw_kernel_and_rfu_instruction_agree_bit_for_bit() {
    let mut block = [0i32; 64];
    for (i, v) in block.iter_mut().enumerate() {
        *v = ((i as i32 * 61) % 511) - 255;
    }
    let golden = fdct_fixed(&block);

    // Software kernel.
    let code = build_dct(&MachineConfig::st200());
    let mut m = Machine::st200();
    let src = m.mem.ram.alloc(128, 32);
    let dst = m.mem.ram.alloc(128, 32);
    let scratch = m.mem.ram.alloc(128, 32);
    for (i, &v) in block.iter().enumerate() {
        m.mem.ram.store16(src + i as u32 * 2, v as u16);
    }
    m.set_gpr(DCT_ARG_SRC, src);
    m.set_gpr(DCT_ARG_DST, dst);
    m.set_gpr(DCT_ARG_SCRATCH, scratch);
    m.run(&code).unwrap();
    for (i, &g) in golden.iter().enumerate() {
        assert_eq!(
            m.mem.ram.load16(dst + i as u32 * 2) as i16 as i32,
            g,
            "sw idx {i}"
        );
    }

    // RFU instruction (through the same machine's memory).
    let mut rfu = Rfu::with_case_study_configs(MeLoopCfg::new(RfuBandwidth::B1x32, 1, 176));
    let out_addr = m.mem.ram.alloc(128, 32);
    let now = m.cycle();
    let outcome = rfu
        .exec(cfgs::DCT_LOOP, &[src, out_addr], &mut m.mem, now)
        .unwrap();
    assert!(outcome.busy > 0);
    for (i, &g) in golden.iter().enumerate() {
        assert_eq!(
            m.mem.ram.load16(out_addr + i as u32 * 2) as i16 as i32,
            g,
            "rfu idx {i}"
        );
    }
}
