//! Property tests for the declarative experiment-spec layer.
//!
//! 1. Every representable [`ExperimentSpec`] round-trips through its JSON
//!    serialization: `parse(serialize(spec)) == spec`.
//! 2. Sweep expansion counts are the cross-product of the axes.
//! 3. Arbitrary malformed spec JSON — printable junk and mangled
//!    fragments of the real schema alike — yields a typed `SpecError`,
//!    never a panic (the pattern of `proptest_asm_parse.rs`).

use proptest::prelude::*;

use rvliw::exp::{DcacheSpec, ExperimentSpec, ReconfigSpec, SpecError, Substrate, SweepAxes};
use rvliw::fault::FaultProfile;
use rvliw::kernels::Variant;
use rvliw::mpeg4::me::SearchAlgorithm;
use rvliw::mpeg4::ApproxSad;
use rvliw::rfu::RfuBandwidth;

fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            (97u8..123).prop_map(|b| b as char),
            (48u8..58).prop_map(|b| b as char),
            Just('-'),
            Just('_'),
            Just(' '),
            Just('"'),
            Just('\\'),
        ],
        1..16,
    )
    .prop_map(|v| v.into_iter().collect())
}

fn arb_variants() -> impl Strategy<Value = Vec<Variant>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Variant::Orig),
            Just(Variant::A1),
            Just(Variant::A2),
            Just(Variant::A3),
        ],
        1..5,
    )
}

fn arb_reconfig() -> impl Strategy<Value = ReconfigSpec> {
    (0u64..500, 1usize..5, any::<bool>()).prop_map(|(penalty, contexts, prefetch_hiding)| {
        ReconfigSpec {
            penalty,
            contexts,
            prefetch_hiding,
        }
    })
}

fn arb_approx_axis() -> impl Strategy<Value = Vec<ApproxSad>> {
    proptest::collection::vec(
        prop_oneof![
            Just(ApproxSad::Exact),
            (2u8..5).prop_map(|step| ApproxSad::SubsampledRows { step }),
            (1u8..5).prop_map(|bits| ApproxSad::ReducedPrecision { bits }),
            (0u32..10_000).prop_map(|threshold| ApproxSad::EarlyExit { threshold }),
        ],
        1..3,
    )
}

fn arb_search_axis() -> impl Strategy<Value = Vec<Option<SearchAlgorithm>>> {
    proptest::collection::vec(
        prop_oneof![
            Just(None),
            Just(Some(SearchAlgorithm::Diamond)),
            Just(Some(SearchAlgorithm::ThreeStep)),
            (1i16..12).prop_map(|range| Some(SearchAlgorithm::Full { range })),
            (1i16..12, 0u32..2_000)
                .prop_map(|(range, threshold)| Some(SearchAlgorithm::Spiral { range, threshold })),
        ],
        1..3,
    )
}

fn arb_substrate_axis() -> impl Strategy<Value = Vec<Substrate>> {
    prop_oneof![
        Just(vec![Substrate::Vliw4]),
        Just(vec![Substrate::ScalarInOrder]),
        Just(vec![Substrate::Vliw4, Substrate::ScalarInOrder]),
    ]
}

fn arb_prefetch_axis() -> impl Strategy<Value = Vec<Option<usize>>> {
    proptest::collection::vec(prop_oneof![Just(None), (1usize..256).prop_map(Some)], 1..3)
}

fn arb_dcache_axis() -> impl Strategy<Value = Vec<Option<DcacheSpec>>> {
    proptest::collection::vec(
        prop_oneof![
            Just(None),
            (0u32..8, 0u32..5).prop_map(|(cap, ways)| Some(DcacheSpec {
                capacity_kb: 1 << cap,
                ways: 1 << ways,
            })),
        ],
        1..3,
    )
}

fn arb_axes() -> impl Strategy<Value = SweepAxes> {
    prop_oneof![
        (
            arb_variants(),
            arb_approx_axis(),
            arb_search_axis(),
            arb_substrate_axis()
        )
            .prop_map(|(v, ap, se, su)| {
                SweepAxes::instruction(v)
                    .with_approx_axis(ap)
                    .with_search_axis(se)
                    .with_substrate_axis(su)
            }),
        (
            proptest::collection::vec(
                prop_oneof![
                    Just(RfuBandwidth::B1x32),
                    Just(RfuBandwidth::B1x64),
                    Just(RfuBandwidth::B2x64),
                ],
                1..4,
            ),
            proptest::collection::vec(1u64..9, 1..4),
            proptest::collection::vec(any::<bool>(), 1..3),
            proptest::collection::vec(prop_oneof![Just(None), (1usize..64).prop_map(Some)], 1..3),
            proptest::collection::vec(arb_reconfig(), 1..3),
            (arb_prefetch_axis(), arb_dcache_axis()),
            (arb_approx_axis(), arb_search_axis(), arb_substrate_axis()),
        )
            .prop_map(
                |(
                    bandwidths,
                    betas,
                    two_line_buffers,
                    lbb_bank_lines,
                    reconfig,
                    (prefetch, dcache),
                    (approx, search, substrate),
                )| {
                    SweepAxes::Loop {
                        bandwidths,
                        betas,
                        two_line_buffers,
                        lbb_bank_lines,
                        reconfig,
                        prefetch,
                        dcache,
                        approx,
                        search,
                        substrate,
                    }
                }
            ),
    ]
}

fn arb_spec() -> impl Strategy<Value = ExperimentSpec> {
    (
        arb_name(),
        proptest::option::of(arb_name()),
        1usize..50,
        proptest::option::of(arb_name()),
        prop_oneof![
            Just(FaultProfile::None),
            Just(FaultProfile::Latency),
            Just(FaultProfile::Chaos),
        ],
        any::<u64>(),
        proptest::option::of(1u64..1_000_000_000),
        proptest::collection::vec(arb_axes(), 1..4),
    )
        .prop_map(
            |(name, title, frames, baseline, fault_profile, fault_seed, cycle_limit, sweeps)| {
                let mut spec = ExperimentSpec::new(&name);
                spec.title = title;
                spec.frames = frames;
                spec.baseline = baseline;
                spec.fault_profile = fault_profile;
                spec.fault_seed = fault_seed;
                spec.cycle_limit = cycle_limit;
                spec.sweeps = sweeps;
                spec
            },
        )
}

/// Arbitrary printable text (plus newlines and tabs).
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('\n'), Just('\t'), (32u8..127).prop_map(|b| b as char)],
        0..400,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    /// parse(serialize(spec)) == spec for every representable spec, both
    /// pretty-printed and compact.
    #[test]
    fn spec_json_roundtrip(spec in arb_spec()) {
        let pretty = spec.to_json_string();
        let back = ExperimentSpec::from_json_str(&pretty).expect("own output parses");
        prop_assert_eq!(&back, &spec, "pretty round-trip\n{}", pretty);
        let compact = spec.to_json().to_string();
        let back = ExperimentSpec::from_json_str(&compact).expect("compact output parses");
        prop_assert_eq!(&back, &spec, "compact round-trip\n{}", compact);
    }

    /// A sweep's scenario count is the cross-product of its axes (when no
    /// labels collide, expansion yields exactly the sum over sweeps).
    #[test]
    fn expansion_counts_match_cross_product(spec in arb_spec()) {
        let expected: usize = spec.sweeps.iter().map(SweepAxes::len).sum();
        match spec.scenarios() {
            Ok(scenarios) => prop_assert_eq!(scenarios.len(), expected),
            Err(SpecError::DuplicateLabel { .. }) => {
                // Colliding axes are rejected, not silently deduplicated.
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    /// Arbitrary printable input never panics the spec parser: it returns
    /// a typed `SpecError` or parses cleanly.
    #[test]
    fn malformed_spec_json_errors_never_panic(text in arb_text()) {
        if let Ok(spec) = ExperimentSpec::from_json_str(&text) {
            let _ = spec.scenarios();
        }
    }

    /// Mangled mixtures of real schema fragments never panic either — this
    /// biases the fuzzing toward inputs that get deep into the schema
    /// checks (unknown keys, wrong types, out-of-range values).
    #[test]
    fn mangled_spec_fragments_error_never_panic(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("{\"name\": \"x\",".to_owned()),
                Just("\"sweeps\": [".to_owned()),
                Just("{\"kind\": \"loop\",".to_owned()),
                Just("{\"kind\": \"instruction\",".to_owned()),
                Just("\"variants\": [\"Orig\", \"A9\"]".to_owned()),
                Just("\"bandwidths\": [\"1x32\"],".to_owned()),
                Just("\"betas\": [0, 1, -2],".to_owned()),
                Just("\"reconfig\": [{\"penalty\": 1e99}]".to_owned()),
                Just("\"lbb_bank_lines\": [null, 0],".to_owned()),
                Just("\"frames\": 999999999999999999999999,".to_owned()),
                Just("}]".to_owned()),
                Just("}".to_owned()),
                Just(",".to_owned()),
                arb_text(),
            ],
            0..16,
        )
    ) {
        let text = lines.join("\n");
        if let Ok(spec) = ExperimentSpec::from_json_str(&text) {
            let _ = spec.scenarios();
        }
    }
}
