//! Cross-crate integration: the full pipeline from synthetic video through
//! the host encoder to cycle-level simulation, plus the extension features
//! (reconfiguration penalties, alternative searches).

use rvliw::exp::{run_me, Scenario, Workload};
use rvliw::mpeg4::me::{MotionSearch, SearchAlgorithm};
use rvliw::mpeg4::{EncoderConfig, SyntheticSequence};
use rvliw::rfu::{ReconfigModel, RfuBandwidth};

#[test]
fn full_pipeline_tiny() {
    let w = Workload::tiny();
    assert!(w.num_calls() > 100);
    // Replaying verifies every simulated SAD against the host trace.
    let orig = run_me(&Scenario::orig(), &w).expect("scenario replay succeeds");
    assert_eq!(orig.calls as usize, w.num_calls());
    // Useful ILP on a 4-issue machine.
    let ipc = orig.core.ipc();
    assert!((1.0..4.0).contains(&ipc), "ORIG ipc {ipc:.2}");
}

#[test]
fn reconfiguration_penalty_erodes_instruction_level_gains() {
    // The paper assumes zero reconfiguration penalty and calls management
    // techniques future work; this extension quantifies the assumption.
    let w = Workload::tiny();
    let free = run_me(&Scenario::a3(), &w).expect("scenario replay succeeds");
    let costly = run_me(
        &Scenario::a3().with_reconfig(ReconfigModel::with_penalty(64, 1)),
        &w,
    )
    .expect("scenario replay succeeds");
    assert!(
        costly.me_cycles > free.me_cycles,
        "penalty must cost cycles: {} vs {}",
        costly.me_cycles,
        free.me_cycles
    );
    // A multi-context memory recovers (almost) all of it: both kernels'
    // configurations stay resident.
    let multi = run_me(
        &Scenario::a3().with_reconfig(ReconfigModel::with_penalty(64, 4)),
        &w,
    )
    .expect("scenario replay succeeds");
    assert!(multi.me_cycles <= costly.me_cycles);
}

#[test]
fn loop_level_speedup_survives_moderate_reconfig_penalty() {
    let w = Workload::tiny();
    let orig = run_me(&Scenario::orig(), &w).expect("scenario replay succeeds");
    // One reconfiguration per macroblock (the prep's RFUINIT) at 512
    // cycles, single context: the loop-level approach still wins big.
    let sc = Scenario::loop_level(RfuBandwidth::B1x32, 1)
        .with_reconfig(ReconfigModel::with_penalty(512, 1));
    let r = run_me(&sc, &w).expect("scenario replay succeeds");
    assert!(
        r.speedup_vs(&orig) > 1.5,
        "speedup with penalty {:.2}",
        r.speedup_vs(&orig)
    );
}

#[test]
fn search_algorithm_changes_the_workload_not_the_kernels() {
    // Different ME searches produce different traces; every one replays
    // exactly on the simulated kernels (the run_me asserts do the checking).
    for algorithm in [
        SearchAlgorithm::Diamond,
        SearchAlgorithm::ThreeStep,
        SearchAlgorithm::Spiral {
            range: 6,
            threshold: 512,
        },
    ] {
        let w = Workload::from_sequence(
            &SyntheticSequence::new(64, 48, 2, 5),
            EncoderConfig {
                q: 10,
                search: MotionSearch {
                    algorithm,
                    half_sample: true,
                    approx: rvliw::mpeg4::ApproxSad::Exact,
                },
            },
        );
        let r = run_me(&Scenario::orig(), &w).expect("scenario replay succeeds");
        assert_eq!(r.calls as usize, w.num_calls(), "{algorithm:?}");
    }
}

#[test]
fn prefetch_buffer_size_matters_for_loop_level() {
    // With the baseline 8-entry prefetch buffer, the macroblock-pattern
    // prefetches (17+ lines) overflow and are dropped; the paper extends
    // the buffer to 64. Dropped prefetches must show up in the stats.
    let w = Workload::tiny();
    let mut small = Scenario::loop_level(RfuBandwidth::B1x32, 1);
    small.mem.prefetch_entries = 8;
    small.label = "1x32 pfb=8".into();
    let r_small = run_me(&small, &w).expect("scenario replay succeeds");
    let r_big = run_me(&Scenario::loop_level(RfuBandwidth::B1x32, 1), &w)
        .expect("scenario replay succeeds");
    assert!(
        r_small.mem.pf_dropped > r_big.mem.pf_dropped,
        "8-entry buffer drops prefetches: {} vs {}",
        r_small.mem.pf_dropped,
        r_big.mem.pf_dropped
    );
    assert!(r_small.me_cycles >= r_big.me_cycles);
}

#[test]
fn encoder_quality_on_the_paper_workload_slice() {
    let w = Workload::qcif_frames(2);
    assert!(w.report.mean_psnr_y() > 30.0);
    assert!(w.report.total_bits > 1000);
    // Reconstructions stay in range and deterministic.
    let w2 = Workload::qcif_frames(2);
    assert_eq!(w.report.total_bits, w2.report.total_bits);
}
