//! Property tests on the memory hierarchy: functional transparency,
//! inclusion-style invariants and prefetch timing bounds.

use proptest::prelude::*;

use rvliw::mem::{Cache, CacheGeometry, MemConfig, MemorySystem, ReplacementPolicy};

fn small_geometry() -> impl Strategy<Value = CacheGeometry> {
    (
        prop_oneof![Just(512u32), Just(1024), Just(2048)],
        prop_oneof![Just(16u32), Just(32), Just(64)],
        prop_oneof![Just(1u32), Just(2), Just(4)],
        prop_oneof![
            Just(ReplacementPolicy::Lru),
            Just(ReplacementPolicy::Fifo),
            Just(ReplacementPolicy::Random)
        ],
    )
        .prop_map(|(capacity, line_size, ways, policy)| CacheGeometry {
            capacity,
            line_size,
            ways,
            policy,
        })
        .prop_filter("at least one set", |g| g.num_sets() > 0)
}

proptest! {
    /// The cache is a *timing* model: stored data always reads back exactly,
    /// whatever the access pattern or geometry.
    #[test]
    fn memory_is_functionally_exact(
        writes in proptest::collection::vec((0u32..4096, any::<u32>()), 1..64),
        reads in proptest::collection::vec(0usize..64, 1..64),
    ) {
        let mut m = MemorySystem::new(MemConfig::default());
        let base = m.ram.alloc(4096 + 4, 32);
        let mut now = 0u64;
        for (i, &(off, v)) in writes.iter().enumerate() {
            let acc = m.write(base + off, 4, v, now).unwrap();
            now += acc.stall + 1;
            let _ = i;
        }
        // Model: last write to each address wins.
        for &ri in &reads {
            let (off, _) = writes[ri % writes.len()];
            let expect = writes
                .iter()
                .rev()
                .find(|(o, _)| {
                    // a 4-byte write at o covers off..off+4 only when equal
                    // (we only check exact-offset reads for simplicity)
                    *o == off
                })
                .map(|&(_, v)| v);
            if let Some(expect) = expect {
                // Overlapping 4-byte writes at different offsets may alias;
                // only assert when no later overlapping write exists.
                let aliased = writes
                    .iter()
                    .rev()
                    .take_while(|(o, _)| *o != off)
                    .any(|(o, _)| (*o < off + 4) && (off < *o + 4));
                if !aliased {
                    let acc = m.read(base + off, 4, now).unwrap();
                    now += acc.stall + 1;
                    prop_assert_eq!(acc.value, expect);
                }
            }
        }
    }

    /// Immediately re-accessing a line always hits.
    #[test]
    fn access_then_access_hits(geom in small_geometry(), addrs in proptest::collection::vec(0u32..8192, 1..100)) {
        let mut c = Cache::new(geom);
        for &a in &addrs {
            let _ = c.access(a, false);
            let out = c.access(a, false);
            prop_assert!(out.hit, "second access to {a:#x} must hit");
        }
    }

    /// The number of resident lines never exceeds the capacity.
    #[test]
    fn residency_bounded_by_capacity(geom in small_geometry(), addrs in proptest::collection::vec(0u32..65536, 1..200)) {
        let mut c = Cache::new(geom);
        for &a in &addrs {
            let _ = c.access(a, false);
        }
        let lines = geom.capacity / geom.line_size;
        let resident = (0..65536u32)
            .step_by(geom.line_size as usize)
            .filter(|&l| c.probe(l))
            .count();
        prop_assert!(resident as u32 <= lines, "{resident} resident > {lines}");
    }

    /// Prefetched lines arrive no earlier than the fill latency and demand
    /// accesses after arrival are free.
    #[test]
    fn prefetch_timing_bounds(offsets in proptest::collection::vec(0u32..128u32, 1..8)) {
        let mut m = MemorySystem::new(MemConfig::default());
        let base = m.ram.alloc(64 * 128, 64);
        let fill = m.config().fill_latency;
        let mut readies = Vec::new();
        for &o in &offsets {
            if let Some(t) = m.prefetch(base + o * 32, 0) {
                prop_assert!(t >= fill);
                readies.push((base + o * 32, t));
            }
        }
        for &(addr, t) in &readies {
            let acc = m.read(addr, 4, t + 1).unwrap();
            prop_assert_eq!(acc.stall, 0, "line at {:#x} ready at {}", addr, t);
        }
    }

    /// Whole-run stall accounting: total stalls equal the sum of per-access
    /// stalls.
    #[test]
    fn stall_accounting_is_additive(addrs in proptest::collection::vec(0u32..16384, 1..100)) {
        let mut m = MemorySystem::new(MemConfig::default());
        let base = m.ram.alloc(16384 + 4, 32);
        let mut now = 0u64;
        let mut total = 0u64;
        for &a in &addrs {
            let acc = m.read(base + a, 4, now).unwrap();
            total += acc.stall;
            now += acc.stall + 1;
        }
        prop_assert_eq!(m.stats().d_stall_cycles, total);
    }
}
