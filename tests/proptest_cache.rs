//! Property tests for the content-addressed scenario result cache.
//!
//! 1. Keys are a pure function of scenario content: equal scenarios hash
//!    equal, distinct scenarios hash distinct — and the key for a pinned
//!    scenario is byte-identical when computed in a *separate process*
//!    (no pointer, allocation-order or per-process hash-seed leakage).
//! 2. Sensitivity: perturbing any single scenario field — including every
//!    fault-plan knob and the fetch/issue substrate — changes the key.
//! 3. Robustness: corrupted or truncated cache files are treated as
//!    misses with a warning, never a panic and never a wrong result.

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use rvliw::cache::CacheKey;
use rvliw::exp::{
    run_me, scenario_key, workload_digest, MeResult, Scenario, ScenarioCache, Substrate, Workload,
};
use rvliw::fault::{FaultPlan, FaultProfile};
use rvliw::kernels::Variant;
use rvliw::mpeg4::me::SearchAlgorithm;
use rvliw::mpeg4::ApproxSad;
use rvliw::rfu::RfuBandwidth;

/// The tiny workload's digest, computed once (encoding is deterministic,
/// so every test and every process sees the same digest).
fn tiny_digest() -> CacheKey {
    static DIGEST: OnceLock<CacheKey> = OnceLock::new();
    *DIGEST.get_or_init(|| workload_digest(&Workload::tiny()))
}

/// A pinned, fully loaded scenario for the cross-process probe.
fn probe_scenario() -> Scenario {
    Scenario::loop_two_lb(5)
        .with_lbb_bank_lines(17)
        .with_cycle_limit(123_456)
        .with_fault_plan(FaultPlan::from_profile(FaultProfile::Chaos, 9))
}

/// Prints the probe key when invoked as the key-probe child process
/// (`keys_are_stable_across_processes` re-runs this test binary with
/// `RVLIW_KEY_PROBE=1`); a no-op in a normal test run.
#[test]
fn key_probe() {
    if std::env::var("RVLIW_KEY_PROBE").is_err() {
        return;
    }
    println!(
        "probe-key={}",
        scenario_key(&probe_scenario(), tiny_digest()).hex()
    );
}

/// The same scenario hashed in a freshly spawned process yields the same
/// key: nothing process-local (addresses, allocation order, randomized
/// hasher state) leaks into the hash. This is what makes on-disk entries
/// reusable across invocations at all.
#[test]
fn keys_are_stable_across_processes() {
    let here = scenario_key(&probe_scenario(), tiny_digest()).hex();
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["key_probe", "--exact", "--nocapture", "--test-threads=1"])
        .env("RVLIW_KEY_PROBE", "1")
        .output()
        .expect("spawn key-probe child");
    assert!(out.status.success(), "child failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // libtest may print the key on the same line as its `test … ` header,
    // so match the marker anywhere in the line.
    let there = stdout
        .lines()
        .find_map(|l| {
            l.split("probe-key=")
                .nth(1)
                .map(|k| k.trim().trim_end_matches(" ok"))
        })
        .unwrap_or_else(|| {
            panic!(
                "child printed no probe key:\n--- stdout\n{stdout}\n--- stderr\n{}",
                String::from_utf8_lossy(&out.stderr)
            )
        });
    assert_eq!(there, here, "cache keys differ across processes");
}

// ---- strategies ----------------------------------------------------------

fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0u32..1000,
        0u64..50,
        0u32..1000,
        (0u32..1000, 0u64..50, 0u32..1000, 0u32..1000),
    )
        .prop_map(
            |(
                seed,
                mem_latency_ppm,
                mem_latency_max,
                flush_ppm,
                (lb_delay_ppm, lb_delay_max, lb_stuck_ppm, bitflip_ppm),
            )| {
                FaultPlan {
                    seed,
                    mem_latency_ppm,
                    mem_latency_max,
                    flush_ppm,
                    lb_delay_ppm,
                    lb_delay_max,
                    lb_stuck_ppm,
                    bitflip_ppm,
                }
            },
        )
}

fn arb_approx() -> impl Strategy<Value = ApproxSad> {
    prop_oneof![
        Just(ApproxSad::Exact),
        (2u8..5).prop_map(|step| ApproxSad::SubsampledRows { step }),
        (1u8..5).prop_map(|bits| ApproxSad::ReducedPrecision { bits }),
        (0u32..10_000).prop_map(|threshold| ApproxSad::EarlyExit { threshold }),
    ]
}

fn arb_search() -> impl Strategy<Value = SearchAlgorithm> {
    prop_oneof![
        Just(SearchAlgorithm::Diamond),
        Just(SearchAlgorithm::ThreeStep),
        (1i16..12).prop_map(|range| SearchAlgorithm::Full { range }),
        (1i16..12, 0u32..2_000)
            .prop_map(|(range, threshold)| SearchAlgorithm::Spiral { range, threshold }),
    ]
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let base = prop_oneof![
        prop_oneof![
            Just(Variant::Orig),
            Just(Variant::A1),
            Just(Variant::A2),
            Just(Variant::A3),
        ]
        .prop_map(Scenario::instruction),
        (
            prop_oneof![
                Just(RfuBandwidth::B1x32),
                Just(RfuBandwidth::B1x64),
                Just(RfuBandwidth::B2x64),
            ],
            1u64..9,
        )
            .prop_map(|(bw, beta)| Scenario::loop_level(bw, beta)),
        (1u64..9).prop_map(Scenario::loop_two_lb),
    ];
    (
        base,
        proptest::option::of(1usize..64),
        proptest::option::of(1u64..1_000_000),
        arb_fault_plan(),
        arb_approx(),
        proptest::option::of(arb_search()),
        any::<bool>(),
    )
        .prop_map(|(mut sc, lbb, limit, fault, approx, search, scalar)| {
            if let Some(lines) = lbb {
                sc = sc.with_lbb_bank_lines(lines);
            }
            if let Some(limit) = limit {
                sc = sc.with_cycle_limit(limit);
            }
            sc = sc.with_approx(approx);
            if let Some(search) = search {
                sc = sc.with_search(search);
            }
            if scalar {
                sc = sc.with_substrate(Substrate::ScalarInOrder);
            }
            sc.with_fault_plan(fault)
        })
}

proptest! {
    /// Keys are content-addressed: equal scenarios (built independently)
    /// collide, unequal scenarios do not.
    #[test]
    fn equal_scenarios_hash_equal_distinct_ones_distinct(
        a in arb_scenario(),
        b in arb_scenario(),
    ) {
        let (ka, kb) = (scenario_key(&a, tiny_digest()), scenario_key(&b, tiny_digest()));
        if a == b {
            prop_assert_eq!(ka, kb, "equal scenarios must share a key");
        } else {
            prop_assert_ne!(ka, kb, "distinct scenarios must not collide:\n{:?}\n{:?}", a, b);
        }
    }

    /// Every single-field perturbation of a scenario — label, budget,
    /// line-buffer capacity, substrate, and each of the eight fault-plan
    /// knobs — produces a different key.
    #[test]
    fn any_single_field_perturbation_changes_the_key(base in arb_scenario()) {
        let digest = tiny_digest();
        let key = scenario_key(&base, digest);
        let mut variants: Vec<(&str, Scenario)> = Vec::new();

        let mut sc = base.clone();
        sc.label.push('\'');
        variants.push(("label", sc));
        let mut sc = base.clone();
        sc.cycle_limit = Some(sc.cycle_limit.map_or(1, |l| l + 1));
        variants.push(("cycle_limit", sc));
        let mut sc = base.clone();
        sc.lbb_bank_lines = Some(sc.lbb_bank_lines.map_or(1, |l| l + 1));
        variants.push(("lbb_bank_lines", sc));

        // Toggling the approximation on/off changes the key…
        let mut sc = base.clone();
        sc.approx = match sc.approx {
            ApproxSad::Exact => ApproxSad::SubsampledRows { step: 2 },
            _ => ApproxSad::Exact,
        };
        variants.push(("approx", sc));
        // …and so does nudging the parameter of an active approximation.
        let bumped = match base.approx {
            ApproxSad::Exact => None,
            ApproxSad::SubsampledRows { step } => Some(ApproxSad::SubsampledRows { step: step + 1 }),
            ApproxSad::ReducedPrecision { bits } => {
                Some(ApproxSad::ReducedPrecision { bits: bits + 1 })
            }
            ApproxSad::EarlyExit { threshold } => Some(ApproxSad::EarlyExit {
                threshold: threshold.wrapping_add(1),
            }),
        };
        if let Some(approx) = bumped {
            let mut sc = base.clone();
            sc.approx = approx;
            variants.push(("approx.param", sc));
        }
        let mut sc = base.clone();
        sc.search = match sc.search {
            None => Some(SearchAlgorithm::Diamond),
            Some(SearchAlgorithm::Diamond) => Some(SearchAlgorithm::ThreeStep),
            Some(_) => None,
        };
        variants.push(("search", sc));
        let mut sc = base.clone();
        sc.machine.substrate = match sc.machine.substrate {
            Substrate::Vliw4 => Substrate::ScalarInOrder,
            Substrate::ScalarInOrder => Substrate::Vliw4,
        };
        variants.push(("substrate", sc));

        let bump_u32 = |v: u32| v.wrapping_add(1);
        let bump_u64 = |v: u64| v.wrapping_add(1);
        for (name, perturb) in [
            ("fault.seed", Box::new(|p: &mut FaultPlan| p.seed = bump_u64(p.seed)) as Box<dyn Fn(&mut FaultPlan)>),
            ("fault.mem_latency_ppm", Box::new(|p| p.mem_latency_ppm = bump_u32(p.mem_latency_ppm))),
            ("fault.mem_latency_max", Box::new(|p| p.mem_latency_max = bump_u64(p.mem_latency_max))),
            ("fault.flush_ppm", Box::new(|p| p.flush_ppm = bump_u32(p.flush_ppm))),
            ("fault.lb_delay_ppm", Box::new(|p| p.lb_delay_ppm = bump_u32(p.lb_delay_ppm))),
            ("fault.lb_delay_max", Box::new(|p| p.lb_delay_max = bump_u64(p.lb_delay_max))),
            ("fault.lb_stuck_ppm", Box::new(|p| p.lb_stuck_ppm = bump_u32(p.lb_stuck_ppm))),
            ("fault.bitflip_ppm", Box::new(|p| p.bitflip_ppm = bump_u32(p.bitflip_ppm))),
        ] {
            let mut sc = base.clone();
            perturb(&mut sc.fault);
            variants.push((name, sc));
        }

        for (field, perturbed) in variants {
            prop_assert_ne!(
                scenario_key(&perturbed, digest),
                key,
                "perturbing `{}` did not change the key", field
            );
        }
        // A different workload digest also yields a different key.
        let other = CacheKey::from_hex(&format!("{:032x}", 0xdead_beefu128)).expect("valid hex");
        prop_assert_ne!(scenario_key(&base, other), key);
    }
}

// ---- corruption robustness -----------------------------------------------

/// One valid on-disk entry (scenario, measured result, file bytes),
/// simulated once and shared by every corruption case.
struct ValidEntry {
    scenario: Scenario,
    result: MeResult,
    file: Vec<u8>,
    file_name: String,
}

fn valid_entry() -> &'static ValidEntry {
    static ENTRY: OnceLock<ValidEntry> = OnceLock::new();
    ENTRY.get_or_init(|| {
        let w = Workload::tiny();
        let scenario = Scenario::orig();
        let result = run_me(&scenario, &w).expect("tiny ORIG run completes");
        let dir = tmpdir("seed");
        let cache = ScenarioCache::open(&dir, &w, "tiny").expect("cache opens");
        cache.record(&scenario, &result);
        let file_name = format!("{}.json", cache.key_for(&scenario).hex());
        let file = std::fs::read(dir.join(&file_name)).expect("entry was published");
        ValidEntry {
            scenario,
            result,
            file,
            file_name,
        }
    })
}

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rvliw-proptest-cache-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    /// Truncating a valid entry anywhere, or splicing arbitrary bytes
    /// into it, never panics the lookup and never produces a wrong
    /// result: the lookup either still returns the original measurement
    /// (the mutation preserved the envelope) or misses.
    #[test]
    fn corrupted_entries_are_misses_never_panics_or_wrong_results(
        cut in 0usize..4096,
        splice_at in 0usize..4096,
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let entry = valid_entry();
        let mut bytes = entry.file.clone();
        bytes.truncate(cut.min(bytes.len()));
        let at = splice_at.min(bytes.len());
        bytes.splice(at..at, junk);

        let dir = tmpdir("corrupt");
        std::fs::write(dir.join(&entry.file_name), &bytes).expect("write mutated entry");
        let w = Workload::tiny();
        let cache = ScenarioCache::open(&dir, &w, "tiny").expect("cache opens");
        match cache.lookup(&entry.scenario) {
            // The mutation happened to preserve a valid envelope (e.g. a
            // zero-length splice after truncating nothing).
            Some(r) => prop_assert_eq!(r, entry.result.clone()),
            None => {
                let counts = cache.counts();
                prop_assert_eq!(counts.hits, 0);
                prop_assert_eq!(
                    counts.stale + counts.misses, 1,
                    "a corrupt entry is a (stale) miss"
                );
            }
        }
    }
}
