//! Resilience properties for the supervised sweep runner.
//!
//! 1. Resume safety: a run journal truncated at *any* byte boundary is
//!    still a valid resume source. `Journal::load` keeps every complete,
//!    schema-valid line and drops the torn tail, and a resumed run
//!    reproduces the uninterrupted run's result vector bit for bit — at
//!    one worker thread and at four.
//! 2. Retry determinism: a chaos-profile sweep with a retry budget is a
//!    pure function of its seeds. Two identical runs agree on every
//!    result *and* on the health counters, and the outcome is invariant
//!    under the thread count.
//!
//! This file rides in the no-panic clippy gate alongside the library
//! crates, so fallible setup goes through [`ok`] instead of `unwrap`.

use std::fmt::Display;
use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use rvliw::exp::{
    run_scenario_list_supervised, Journal, Scenario, ScenarioResult, SupervisorConfig, Workload,
};
use rvliw::fault::{FaultPlan, FaultProfile};

/// Unwraps a fallible setup step with a labelled panic (the clippy gate
/// forbids `unwrap`/`expect` in this target).
fn ok<T, E: Display>(what: &str, r: Result<T, E>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("{what}: {e}"),
    }
}

fn nop(_: &str) {}

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rvliw-proptest-supervisor-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    ok("create tmpdir", std::fs::create_dir_all(&dir));
    dir
}

/// The scenario list every property runs: a mix of instruction-level and
/// loop-level scenarios, all of which complete on the tiny workload.
fn grid() -> Vec<Scenario> {
    vec![
        Scenario::orig(),
        Scenario::a1(),
        Scenario::a3(),
        Scenario::loop_two_lb(5),
    ]
}

/// One uninterrupted journalled run, simulated once and shared by every
/// truncation case: the reference result vector and the journal bytes.
struct Baseline {
    results: Vec<ScenarioResult>,
    journal: Vec<u8>,
}

fn baseline() -> &'static Baseline {
    static B: OnceLock<Baseline> = OnceLock::new();
    B.get_or_init(|| {
        let w = Workload::tiny();
        let path = tmpdir("seed").join("run.jsonl");
        let config = SupervisorConfig {
            journal: Some(ok("open journal", Journal::open(&path))),
            ..SupervisorConfig::default()
        };
        let (results, health) = run_scenario_list_supervised(&grid(), &w, 1, &nop, None, &config);
        assert_eq!(health.completed, grid().len(), "baseline grid completes");
        Baseline {
            results,
            journal: ok("read journal", std::fs::read(&path)),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chopping the journal at any byte boundary — mid-line, mid-number,
    /// between lines, or past the end — leaves a resumable prefix: every
    /// complete line is replayed without re-simulation, the torn tail is
    /// re-simulated, and the final result vector is bit-identical to the
    /// uninterrupted run's, at one thread and at four.
    #[test]
    fn journal_truncated_anywhere_resumes_bit_identically(cut in 0usize..4096) {
        let b = baseline();
        let mut bytes = b.journal.clone();
        bytes.truncate(cut.min(bytes.len()));
        let complete_lines = bytes.iter().filter(|&&c| c == b'\n').count();

        let path = tmpdir("cut").join("run.jsonl");
        ok("write truncated journal", std::fs::write(&path, &bytes));
        let resume = ok("load truncated journal", Journal::load(&path));
        prop_assert_eq!(resume.len(), complete_lines, "one replay entry per complete line");

        let w = Workload::tiny();
        for threads in [1usize, 4] {
            let config = SupervisorConfig {
                resume: resume.clone(),
                ..SupervisorConfig::default()
            };
            let (results, health) =
                run_scenario_list_supervised(&grid(), &w, threads, &nop, None, &config);
            prop_assert_eq!(&results, &b.results, "resume at {} threads diverged", threads);
            prop_assert_eq!(health.replayed, resume.len());
            prop_assert_eq!(health.completed, grid().len());
            // Replayed scenarios cost no simulation attempts.
            prop_assert_eq!(health.attempts, (grid().len() - resume.len()) as u64);
        }
    }
}

/// A chaos-profile sweep under a retry budget is deterministic: the same
/// seeds produce the same results and the same health counters on every
/// run, and the thread count does not leak into either. One scenario
/// carries an unmeetable cycle budget, so the retry path (transient
/// classification, per-attempt reseed, backoff) is exercised — and
/// exhausted — on every run.
#[test]
fn chaos_sweep_with_retries_is_deterministic() {
    let w = Workload::tiny();
    let grid = vec![
        Scenario::orig().with_fault_plan(FaultPlan::from_profile(FaultProfile::Chaos, 7)),
        Scenario::a1().with_fault_plan(FaultPlan::from_profile(FaultProfile::Chaos, 11)),
        Scenario::a3().with_cycle_limit(1),
    ];
    let run = |threads: usize| {
        let config = SupervisorConfig {
            max_retries: 3,
            ..SupervisorConfig::default()
        };
        run_scenario_list_supervised(&grid, &w, threads, &nop, None, &config)
    };

    let (r1, h1) = run(1);
    let (r2, h2) = run(1);
    assert_eq!(r1, r2, "same-seed chaos runs diverged");
    assert_eq!(h1.summary_line(), h2.summary_line());
    assert_eq!(h1.attempts, h2.attempts);

    let (r4, h4) = run(4);
    assert_eq!(r1, r4, "thread count leaked into chaos results");
    assert_eq!(h1.summary_line(), h4.summary_line());
    assert_eq!(h1.attempts, h4.attempts);

    // The cycle-limited scenario fails with a transient error and burns
    // its whole retry budget, deterministically.
    assert!(h1.retries >= 3, "expected ≥3 retries, saw {}", h1.retries);
    assert!(h1.failed >= 1, "the cycle-limited scenario cannot complete");
}
