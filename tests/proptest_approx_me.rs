//! Differential property suite for approximate motion estimation.
//!
//! Three independent implementations of every approximate-SAD mode exist:
//! the scalar encoder reference (`mpeg4::sad::get_sad_approx`), the
//! simulated instruction-level VLIW kernels (`build_getsad_approx`) and
//! the RFU loop datapath (`golden_sad_approx`). The properties here pin
//! them to each other bit for bit across random pixels, candidates,
//! interpolation kinds and approximation parameters — and pin the exact
//! mode to `get_sad`, the golden model of the paper's baseline.
//!
//! The end-to-end check rides on the replay contract: `run_me` re-encodes
//! the workload under the scenario's approximate configuration and
//! asserts every simulated `GetSad` against the host encoder, so a
//! successful run *is* the differential.

use proptest::prelude::*;

use rvliw::exp::{run_me, Scenario, SimSession, Workload};
use rvliw::isa::MachineConfig;
use rvliw::kernels::regs::{ARG_CAND, ARG_INTERP, ARG_REF, ARG_STRIDE, RESULT};
use rvliw::kernels::{build_getsad_approx, Variant};
use rvliw::mpeg4::me::SearchAlgorithm;
use rvliw::mpeg4::sad::{get_sad, get_sad_approx, ApproxSad, InterpKind};
use rvliw::mpeg4::types::Plane;
use rvliw::rfu::{golden_sad_approx, InterpMode, MeLoopCfg, RfuBandwidth, SadApprox};
use rvliw::sim::Machine;

const STRIDE: usize = 176;
const HEIGHT: usize = 48;

/// The host-side approximation as the RFU-side mirror enum (the same
/// mapping `core::scenario` applies when it builds kernels).
fn to_rfu(approx: ApproxSad) -> SadApprox {
    match approx {
        ApproxSad::Exact => SadApprox::Exact,
        ApproxSad::SubsampledRows { step } => SadApprox::SubsampledRows { step },
        ApproxSad::ReducedPrecision { bits } => SadApprox::ReducedPrecision { bits },
        ApproxSad::EarlyExit { threshold } => SadApprox::EarlyExit { threshold },
    }
}

/// Every interpolation kind with its RFU mirror and kernel argument code.
const KINDS: [(InterpKind, InterpMode, u32); 4] = [
    (InterpKind::None, InterpMode::None, 0),
    (InterpKind::H, InterpMode::H, 1),
    (InterpKind::V, InterpMode::V, 2),
    (InterpKind::Diag, InterpMode::Diag, 3),
];

fn arb_approx() -> impl Strategy<Value = ApproxSad> {
    prop_oneof![
        Just(ApproxSad::Exact),
        prop_oneof![Just(2u8), Just(4u8)].prop_map(|step| ApproxSad::SubsampledRows { step }),
        (1u8..=4).prop_map(|bits| ApproxSad::ReducedPrecision { bits }),
        (0u32..20_000).prop_map(|threshold| ApproxSad::EarlyExit { threshold }),
    ]
}

fn textured_plane(seed: u32) -> Plane {
    let mut p = Plane::new(STRIDE, HEIGHT);
    for y in 0..HEIGHT {
        for x in 0..STRIDE {
            let v = (x as u32)
                .wrapping_mul(31)
                .wrapping_add((y as u32).wrapping_mul(17))
                .wrapping_add(seed.wrapping_mul(97))
                .wrapping_mul(2_654_435_761);
            p.set(x, y, (v >> 24) as u8);
        }
    }
    p
}

/// Loads a plane into simulator RAM, returning its base address.
fn load_plane(m: &mut Machine, p: &Plane) -> u32 {
    let base = m.mem.ram.alloc((p.width() * p.height()) as u32, 32);
    for y in 0..p.height() {
        m.mem
            .ram
            .write_bytes(base + (y * p.width()) as u32, p.row(y));
    }
    base
}

fn machine_with_rfu() -> Machine {
    SimSession::st200()
        .me_loop(MeLoopCfg::new(RfuBandwidth::B1x32, 1, STRIDE as u32))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Every simulated instruction-level kernel returns exactly the SAD
    /// the scalar encoder reference computes, for every variant,
    /// interpolation kind, candidate alignment and approximation mode.
    #[test]
    fn instruction_kernels_match_the_scalar_reference(
        seed_cur in 0u32..1_000,
        seed_prev in 1_000u32..2_000,
        variant_ix in 0usize..4,
        kind_ix in 0usize..4,
        approx in arb_approx(),
        cx in 17usize..150,
        cy in 3usize..28,
    ) {
        let variant = [Variant::Orig, Variant::A1, Variant::A2, Variant::A3][variant_ix];
        let (kind, _, interp_code) = KINDS[kind_ix];
        let cur = textured_plane(seed_cur);
        let prev = textured_plane(seed_prev);
        let reference = get_sad_approx(&cur, 16, 16, &prev, cx, cy, kind, approx);
        let code = build_getsad_approx(variant, to_rfu(approx), &MachineConfig::st200());
        let mut m = machine_with_rfu();
        let cur_base = load_plane(&mut m, &cur);
        let prev_base = load_plane(&mut m, &prev);
        m.set_gpr(ARG_REF, cur_base + (16 * STRIDE + 16) as u32);
        m.set_gpr(ARG_CAND, prev_base + (cy * STRIDE + cx) as u32);
        m.set_gpr(ARG_INTERP, interp_code);
        m.set_gpr(ARG_STRIDE, STRIDE as u32);
        if let Err(e) = m.run(&code) {
            panic!("{variant:?} {kind:?} {approx:?}: kernel run failed: {e}");
        }
        prop_assert_eq!(
            m.gpr(RESULT), reference,
            "variant {:?} kind {:?} approx {:?} cand ({}, {})",
            variant, kind, approx, cx, cy
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96 })]

    /// The RFU loop datapath's golden model agrees with the scalar
    /// encoder reference for every mode and candidate position.
    #[test]
    fn rfu_loop_datapath_matches_the_scalar_reference(
        seed_cur in 0u32..1_000,
        seed_prev in 1_000u32..2_000,
        kind_ix in 0usize..4,
        approx in arb_approx(),
        rx in 0usize..150,
        ry in 0usize..28,
        cx in 0usize..150,
        cy in 0usize..28,
    ) {
        let (kind, mode, _) = KINDS[kind_ix];
        let cur = textured_plane(seed_cur);
        let prev = textured_plane(seed_prev);
        let mut ram = rvliw::mem::Ram::new(1 << 20);
        let r_base = ram.alloc((STRIDE * HEIGHT) as u32, 32);
        let c_base = ram.alloc((STRIDE * HEIGHT) as u32, 32);
        for y in 0..HEIGHT {
            ram.write_bytes(r_base + (y * STRIDE) as u32, cur.row(y));
            ram.write_bytes(c_base + (y * STRIDE) as u32, prev.row(y));
        }
        let got = golden_sad_approx(
            &ram,
            r_base + (ry * STRIDE + rx) as u32,
            c_base + (cy * STRIDE + cx) as u32,
            STRIDE as u32,
            mode,
            to_rfu(approx),
        );
        prop_assert_eq!(
            got,
            get_sad_approx(&cur, rx, ry, &prev, cx, cy, kind, approx),
            "kind {:?} approx {:?} ref ({}, {}) cand ({}, {})",
            kind, approx, rx, ry, cx, cy
        );
    }
}

/// The exact mode of the approximate kernel builder is bit-identical to
/// `mpeg4::sad::get_sad` — the paper's baseline semantics survive the
/// approximation plumbing untouched.
#[test]
fn exact_mode_kernels_are_bit_identical_to_get_sad() {
    let cur = textured_plane(11);
    let prev = textured_plane(22);
    for variant in [Variant::Orig, Variant::A1, Variant::A2, Variant::A3] {
        let code = build_getsad_approx(variant, SadApprox::Exact, &MachineConfig::st200());
        let mut m = machine_with_rfu();
        let cur_base = load_plane(&mut m, &cur);
        let prev_base = load_plane(&mut m, &prev);
        for (kind, _, interp_code) in KINDS {
            for align in 0..4usize {
                let (cx, cy) = (20 + align, 9);
                m.set_gpr(ARG_REF, cur_base + (16 * STRIDE + 16) as u32);
                m.set_gpr(ARG_CAND, prev_base + (cy * STRIDE + cx) as u32);
                m.set_gpr(ARG_INTERP, interp_code);
                m.set_gpr(ARG_STRIDE, STRIDE as u32);
                assert!(
                    m.run(&code).is_ok(),
                    "{variant:?} {kind:?} align {align}: kernel run failed"
                );
                assert_eq!(
                    m.gpr(RESULT),
                    get_sad(&cur, 16, 16, &prev, cx, cy, kind),
                    "{variant:?} {kind:?} align {align}"
                );
            }
        }
    }
}

/// End-to-end replay at both scenario levels: the derived workload's
/// trace replays cleanly (every simulated `GetSad` checked against the
/// host encoder) and carries a non-negative quality block.
#[test]
fn approx_scenarios_replay_end_to_end() {
    let workload = Workload::tiny();
    let scenarios: Vec<Scenario> = [
        ApproxSad::SubsampledRows { step: 2 },
        ApproxSad::ReducedPrecision { bits: 2 },
        ApproxSad::EarlyExit { threshold: 4096 },
    ]
    .into_iter()
    .flat_map(|approx| {
        [
            Scenario::a3().with_approx(approx),
            Scenario::loop_level(RfuBandwidth::B1x32, 1).with_approx(approx),
        ]
    })
    .chain([
        Scenario::a3().with_search(SearchAlgorithm::Diamond),
        Scenario::loop_level(RfuBandwidth::B1x32, 1).with_search(SearchAlgorithm::Spiral {
            range: 8,
            threshold: 256,
        }),
    ])
    .collect();
    for sc in scenarios {
        match run_me(&sc, &workload) {
            Ok(res) => {
                let Some(q) = res.quality else {
                    panic!("`{}`: derived replay lost its quality block", sc.label);
                };
                assert!(
                    q.sad_inflation >= 0.0,
                    "`{}`: negative inflation {}",
                    sc.label,
                    q.sad_inflation
                );
            }
            Err(e) => panic!("`{}`: replay diverged: {e}", sc.label),
        }
    }
}
