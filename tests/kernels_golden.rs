//! Randomized cross-validation: every `GetSad` kernel variant — and the
//! loop-level RFU instruction — against the host golden model, over random
//! planes, positions, alignments and interpolation kinds.

use proptest::prelude::*;

use rvliw::exp::SimSession;
use rvliw::isa::MachineConfig;
use rvliw::kernels::regs::{
    ARG_BASE, ARG_BEST, ARG_CAND, ARG_CX, ARG_CY, ARG_INTERP, ARG_NCX, ARG_NCY, ARG_REF,
    ARG_STRIDE, NO_CANDIDATE, RESULT,
};
use rvliw::kernels::{build_getsad, build_mb_prep, build_me_loop_call, DriverKind, Variant};
use rvliw::mpeg4::sad::{get_sad, InterpKind};
use rvliw::mpeg4::types::Plane;
use rvliw::rfu::{MeLoopCfg, RfuBandwidth};
use rvliw::sim::Machine;

const STRIDE: u32 = 176;
const H: usize = 64;

fn arb_plane() -> impl Strategy<Value = Plane> {
    proptest::collection::vec(any::<u8>(), STRIDE as usize * H)
        .prop_map(|data| Plane::from_data(STRIDE as usize, H, data))
}

fn load_plane(m: &mut Machine, p: &Plane) -> u32 {
    let base = m.mem.ram.alloc((p.width() * p.height()) as u32, 32);
    for y in 0..p.height() {
        m.mem
            .ram
            .write_bytes(base + (y * p.width()) as u32, p.row(y));
    }
    base
}

fn kind_of(bits: u32) -> InterpKind {
    match bits {
        0 => InterpKind::None,
        1 => InterpKind::H,
        2 => InterpKind::V,
        _ => InterpKind::Diag,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four instruction-level kernels return the exact golden SAD for
    /// random content, positions, alignments and interpolation modes.
    #[test]
    fn instruction_kernels_match_golden(
        cur in arb_plane(),
        prev in arb_plane(),
        mb in (0usize..9, 0usize..2),
        cand in (0usize..150, 0usize..40),
        interp in 0u32..4,
    ) {
        let kind = kind_of(interp);
        let (rx, ry) = (mb.0 * 16, mb.1 * 16);
        let (cx, cy) = (
            cand.0.min(STRIDE as usize - kind.cols()),
            cand.1.min(H - kind.rows()),
        );
        let golden = get_sad(&cur, rx, ry, &prev, cx, cy, kind);
        for variant in Variant::all() {
            let code = build_getsad(variant, &MachineConfig::st200());
            let mut m = SimSession::st200()
                .me_loop(MeLoopCfg::new(RfuBandwidth::B1x32, 1, STRIDE))
                .build();
            let cur_base = load_plane(&mut m, &cur);
            let prev_base = load_plane(&mut m, &prev);
            m.set_gpr(ARG_REF, cur_base + (ry as u32) * STRIDE + rx as u32);
            m.set_gpr(ARG_CAND, prev_base + (cy as u32) * STRIDE + cx as u32);
            m.set_gpr(ARG_INTERP, interp);
            m.set_gpr(ARG_STRIDE, STRIDE);
            m.run(&code).expect("kernel runs");
            prop_assert_eq!(
                m.gpr(RESULT),
                golden,
                "{:?} kind {:?} cand ({}, {})",
                variant, kind, cx, cy
            );
        }
    }

    /// The loop-level RFU instruction (both line-buffer schemes, all
    /// bandwidths and β values) returns the exact golden SAD.
    #[test]
    fn loop_kernels_match_golden(
        cur in arb_plane(),
        prev in arb_plane(),
        cand in (0usize..150, 0usize..40),
        interp in 0u32..4,
        bw_i in 0usize..3,
        beta in prop_oneof![Just(1u64), Just(5)],
        two_lb in any::<bool>(),
    ) {
        let kind = kind_of(interp);
        let (rx, ry) = (32usize, 16usize);
        let (cx, cy) = (
            cand.0.min(STRIDE as usize - kind.cols()),
            cand.1.min(H - kind.rows()),
        );
        let golden = get_sad(&cur, rx, ry, &prev, cx, cy, kind);

        let mut me = MeLoopCfg::new(RfuBandwidth::all()[bw_i], beta, STRIDE);
        let dkind = if two_lb {
            me = me.with_line_buffer_b();
            DriverKind::DoubleLineBuffer
        } else {
            DriverKind::SingleLineBuffer
        };
        let mut m = SimSession::st200_loop_level().me_loop(me).build();
        let cur_base = load_plane(&mut m, &cur);
        let prev_base = load_plane(&mut m, &prev);
        let prep = build_mb_prep(dkind, &MachineConfig::st200());
        let call = build_me_loop_call(dkind, &MachineConfig::st200());

        m.set_gpr(ARG_REF, cur_base + (ry as u32) * STRIDE + rx as u32);
        m.set_gpr(ARG_BASE, prev_base);
        m.set_gpr(ARG_STRIDE, STRIDE);
        m.set_gpr(ARG_NCX, cx as u32);
        m.set_gpr(ARG_NCY, cy as u32);
        m.run(&prep).expect("prep runs");

        m.set_gpr(ARG_REF, cur_base + (ry as u32) * STRIDE + rx as u32);
        m.set_gpr(ARG_BASE, prev_base);
        m.set_gpr(ARG_CX, cx as u32);
        m.set_gpr(ARG_CY, cy as u32);
        m.set_gpr(ARG_INTERP, interp);
        m.set_gpr(ARG_STRIDE, STRIDE);
        m.set_gpr(ARG_NCX, NO_CANDIDATE);
        m.set_gpr(ARG_NCY, NO_CANDIDATE);
        m.set_gpr(ARG_BEST, u32::MAX);
        m.run(&call).expect("driver runs");
        prop_assert_eq!(m.gpr(RESULT), golden, "{:?} b={} kind {:?}", dkind, beta, kind);
    }
}
