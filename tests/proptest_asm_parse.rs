//! Property test: programs round-trip through the text assembler.
//!
//! Any straight-line program the `Builder` can produce renders to a listing
//! (`Display`) that `parse_program` reads back op-for-op.

use proptest::prelude::*;

use rvliw::asm::{parse_program, Builder};
use rvliw::isa::{Br, Dest, Gpr, Op, Opcode, Src};

/// Opcodes whose display form is plain `mnemonic [dest =] srcs…`.
const TEXTABLE: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
    Opcode::Min,
    Opcode::Maxu,
    Opcode::Mov,
    Opcode::Mul,
    Opcode::Mulh,
    Opcode::Sad4,
    Opcode::Avg4r,
    Opcode::Avgh4,
    Opcode::Pack4,
    Opcode::Extbu,
    Opcode::Ldw,
    Opcode::Ldbu,
];

fn arb_textable_op() -> impl Strategy<Value = Op> {
    (
        0..TEXTABLE.len(),
        1u8..64,
        0u8..64,
        prop_oneof![
            (0u8..64).prop_map(|r| Src::Gpr(Gpr::new(r))),
            (-100_000i32..100_000).prop_map(Src::Imm),
        ],
    )
        .prop_map(|(oi, d, s1, s2)| {
            Op::new(
                TEXTABLE[oi],
                Dest::Gpr(Gpr::new(d)),
                &[Src::Gpr(Gpr::new(s1)), s2],
            )
        })
}

/// Arbitrary printable text (plus newlines and tabs).
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('\n'), Just('\t'), (32u8..127).prop_map(|b| b as char),],
        0..400,
    )
    .prop_map(|v| v.into_iter().collect())
}

/// Short junk built from the parser's own meta-characters.
fn arb_fragment() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            (97u8..123).prop_map(|b| b as char),
            Just('$'),
            Just('#'),
            Just('='),
            Just(','),
            Just('>'),
            Just(':'),
            Just(' '),
            Just('-'),
        ],
        0..24,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #[test]
    fn display_parse_roundtrip(ops in proptest::collection::vec(arb_textable_op(), 1..40)) {
        let mut b = Builder::new("prop");
        for op in &ops {
            b.op(*op);
        }
        b.halt();
        let p1 = b.build();
        // Render the whole program and parse it back.
        let text: String = p1.blocks[0].ops.iter().map(|o| format!("{o}\n")).collect();
        let p2 = parse_program("prop", &text).expect("round-trip parses");
        // Block 0 of the parse holds everything up to (and including) halt.
        let parsed: Vec<Op> = p2.blocks.iter().flat_map(|bl| bl.ops.clone()).collect();
        prop_assert_eq!(parsed, p1.blocks[0].ops.clone());
    }

    #[test]
    fn cmp_and_branch_roundtrip(n in 1u8..8, imm in -256i32..256) {
        let mut b = Builder::new("prop");
        b.movi(Gpr::new(1), imm);
        let top = b.label();
        b.bind(top);
        b.subi(Gpr::new(1), Gpr::new(1), 1);
        b.cmpne_br(Br::new(n % 8), Gpr::new(1), 0);
        b.br(Br::new(n % 8), top);
        b.halt();
        let p1 = b.build();
        // Render with named labels (use the program Display, which prints
        // label ids the parser can re-bind).
        let text = p1.to_string();
        // Strip the "program <name>:" header line.
        let body: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        let p2 = parse_program("prop", &body).expect("parses");
        p2.validate().expect("valid");
        // Same op multiset (labels renumbered is fine).
        let count = |p: &rvliw::asm::Program| p.blocks.iter().map(|b| b.ops.len()).sum::<usize>();
        prop_assert_eq!(count(&p1), count(&p2));
    }

    /// Arbitrary printable input never panics the parser: it either parses
    /// (and then validates without panicking) or returns a typed error.
    #[test]
    fn malformed_assembly_errors_never_panic(text in arb_text()) {
        if let Ok(p) = parse_program("fuzz", &text) {
            let _ = p.validate();
        }
    }

    /// Mangled mixtures of real listing fragments never panic either —
    /// this biases the fuzzing toward inputs that get deep into the
    /// parser (labels, configuration ids, branch targets, operands).
    #[test]
    fn mangled_listing_fragments_error_never_panic(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("add $r1 = $r2, $r3".to_owned()),
                Just("L1:".to_owned()),
                Just("goto -> L1".to_owned()),
                Just("goto -> nowhere".to_owned()),
                Just("rfusend#9 $r1, $r2".to_owned()),
                Just("rfusend#x $r1".to_owned()),
                Just("stw $r1, $r2, 8".to_owned()),
                Just("halt".to_owned()),
                Just(":".to_owned()),
                Just("= $r1".to_owned()),
                arb_fragment(),
            ],
            0..32,
        )
    ) {
        let text = lines.join("\n");
        if let Ok(p) = parse_program("fuzz", &text) {
            let _ = p.validate();
        }
    }
}
