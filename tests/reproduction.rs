//! End-to-end reproduction bands: on a reduced workload, the measured
//! results must show the qualitative shape of the paper's Tables 1–7.
//!
//! The full 25-frame run (and the exact paper-vs-measured comparison) is
//! produced by `cargo run --release -p rvliw-bench --bin tables`; these
//! tests guard the shape on every `cargo test`.

use rvliw::exp::{CaseStudy, TablesSnapshot, Workload, GETSAD_SHARE_ORIG};
use rvliw::trace::Json;

fn case_study() -> CaseStudy {
    // QCIF, 2 frames: ~3000 GetSad calls — small enough for debug-mode CI,
    // large enough for stable ratios.
    let w = Workload::qcif_frames(2);
    CaseStudy::run(&w)
}

#[test]
fn tables_1_through_7_have_the_papers_shape() {
    let cs = case_study();

    // --- Table 1: Orig < A1 ≤ A2 ≤ A3, all modest (< 2x). --------------
    let t1 = cs.table1();
    assert_eq!(t1.rows[0].name, "Orig");
    let (a1, a2, a3) = (
        t1.rows[1].improvement,
        t1.rows[2].improvement,
        t1.rows[3].improvement,
    );
    assert!(a1 > 0.05, "A1 improves: {a1}");
    assert!(
        a1 <= a2 + 0.02 && a2 <= a3 + 0.02,
        "ordering {a1} {a2} {a3}"
    );
    assert!(
        t1.rows[3].speedup < 2.0,
        "instruction-level stays marginal (paper: 1-2x)"
    );

    // --- Table 2: loop-level 3-8x, increasing with bandwidth. -----------
    let t2 = cs.table2();
    assert!(
        t2.rows[0].speedup_b1 > 2.0,
        "1x32 {}",
        t2.rows[0].speedup_b1
    );
    assert!(t2.rows[0].speedup_b1 < t2.rows[1].speedup_b1);
    assert!(t2.rows[1].speedup_b1 < t2.rows[2].speedup_b1);
    // The kernel-loop approach dwarfs the instruction-level one.
    assert!(t2.rows[0].speedup_b1 > t1.rows[3].speedup * 1.5);

    // --- Table 3: the fixed +12 cycles hurts high bandwidth more. -------
    let t3 = cs.table3();
    for r in &t3.rows {
        assert_eq!(r.lat_b5 - r.lat_b1, 12);
        assert!(r.pct_speedup_reduction < 0.0, "β slows things down");
    }
    assert!(
        t3.rows[2].pct_speedup_reduction < t3.rows[0].pct_speedup_reduction,
        "2x64 loses more speedup than 1x32"
    );

    // --- Table 4: stalls grow with bandwidth (narrower prefetch window).
    let t4 = cs.table4();
    assert!(t4.rows[0].stalls_b1 <= t4.rows[1].stalls_b1);
    assert!(t4.rows[1].stalls_b1 <= t4.rows[2].stalls_b1);

    // --- Table 5: ORIG stall share near the paper's 1.96 %. -------------
    let t5 = cs.table5();
    assert!(
        (0.005..=0.06).contains(&t5.orig_share),
        "orig stall share {:.3}",
        t5.orig_share
    );

    // --- Table 6: measured ≤ theoretical; ratio worsens with bandwidth. -
    let t6 = cs.table6();
    for r in &t6.rows {
        assert!(r.ratio <= 1.0 + 1e-9 && r.ratio > 0.57, "ratio {}", r.ratio);
    }
    let b1: Vec<f64> = t6
        .rows
        .iter()
        .filter(|r| r.beta == 1)
        .map(|r| r.ratio)
        .collect();
    assert!(b1[0] >= b1[2], "accuracy drops as bandwidth grows: {b1:?}");

    // --- Table 7: two line buffers are the best point; %Rel collapses. --
    let t7 = cs.table7();
    assert!(t7.rows[0].speedup > t2.rows[0].speedup_b1);
    assert!(t7.rows[0].speedup > 5.0, "2LB b=1 {}", t7.rows[0].speedup);
    assert!(t7.rows[1].speedup > 3.5, "2LB b=5 {}", t7.rows[1].speedup);
    assert!((t7.orig_rel_share - GETSAD_SHARE_ORIG).abs() < 1e-6);
    assert!(t7.rows[0].rel_share < 0.08, "%Rel {}", t7.rows[0].rel_share);
    assert!(
        t7.rows[0].stall_reduction > 0.5,
        "stall reduction {}",
        t7.rows[0].stall_reduction
    );
}

#[test]
fn reference_prefetches_are_rarely_late() {
    // The paper: "the number of late and incomplete prefetch operations is
    // relatively low (<1%)" for the reference macroblock gathers.
    let w = Workload::qcif_frames(2);
    let r = rvliw::exp::run_me(&rvliw::exp::Scenario::loop_two_lb(1), &w)
        .expect("scenario replay succeeds");
    let late_rate = r.rfu.lba_waits as f64 / r.rfu.mb_prefetches.max(1) as f64 / 16.0;
    assert!(late_rate < 0.02, "late reference rows: {late_rate:.4}");
}

/// Golden exact-cycle test: every integer cell of Tables 1–7 on the full
/// 25-frame workload must bit-match the `"tables"` snapshot committed in
/// `BENCH_tables.json` (the same baseline `tables --check` gates CI on).
/// The simulation is fully deterministic, so any drift is a semantic
/// change that must be reviewed and re-baselined deliberately.
///
/// Debug builds skip it — the full workload takes minutes unoptimized;
/// `cargo test --release` and the CI regression gate exercise it.
#[cfg_attr(
    debug_assertions,
    ignore = "full-workload golden check; run with --release"
)]
#[test]
fn tables_bit_match_the_committed_baseline() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_tables.json");
    let text = std::fs::read_to_string(path).expect("read BENCH_tables.json");
    let json = Json::parse(&text).expect("BENCH_tables.json is valid JSON");
    let baseline = TablesSnapshot::from_json(
        json.get("tables")
            .expect("BENCH_tables.json has a \"tables\" snapshot"),
    )
    .expect("snapshot well-formed");

    let cs = CaseStudy::run(&Workload::paper_shared());
    let drift = TablesSnapshot::capture(&cs).diff(&baseline);
    assert!(
        drift.is_empty(),
        "{} table cell(s) drifted from the committed baseline:\n{}",
        drift.len(),
        drift.join("\n")
    );
}

#[test]
fn workload_diag_share_matches_paper_sequence() {
    let w = Workload::qcif_frames(4);
    let d = w.diag_share();
    assert!(
        (0.10..=0.25).contains(&d),
        "diag share {d:.3} (paper ≈ 0.18)"
    );
}
