//! Property test: the list scheduler preserves program semantics.
//!
//! For random straight-line programs over the pure ALU/SIMD/multiplier
//! subset, executing the *scheduled* VLIW code on the machine must produce
//! exactly the architectural state of a plain sequential interpretation —
//! whatever reordering and bundling the scheduler chose.

use proptest::prelude::*;

use rvliw::asm::{schedule_st200, Builder};
use rvliw::isa::{Br, Dest, Gpr, Op, Opcode, Src};
use rvliw::sim::{exec::eval_pure, Machine};

/// Opcodes safe for random generation (pure, any operand values legal).
const PURE_OPS: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Nor,
    Opcode::Min,
    Opcode::Max,
    Opcode::Minu,
    Opcode::Maxu,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
    Opcode::Mul,
    Opcode::Mulh,
    Opcode::Sxtb,
    Opcode::Zxth,
    Opcode::Add4,
    Opcode::Sub4,
    Opcode::Avg4,
    Opcode::Avg4r,
    Opcode::Sad4,
    Opcode::Absd4,
    Opcode::Max4u,
    Opcode::Min4u,
    Opcode::Avgh4,
    Opcode::Lsbh4,
    Opcode::Pack4,
    Opcode::Rnd2,
];

#[derive(Debug, Clone)]
enum GenOp {
    /// `opcode rd = rs1, rs2`
    Rrr(Opcode, u8, u8, u8),
    /// `opcode rd = rs1, imm`
    Rri(Opcode, u8, u8, i32),
    /// compare into a branch register
    CmpBr(u8, u8, u8),
    /// select on a branch register
    Slct(u8, u8, u8, u8),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    let pure = (0..PURE_OPS.len(), 1u8..32, 0u8..32, 0u8..32)
        .prop_map(|(i, d, a, b)| GenOp::Rrr(PURE_OPS[i], d, a, b));
    let imm = (0..PURE_OPS.len(), 1u8..32, 0u8..32, any::<i32>())
        .prop_map(|(i, d, a, v)| GenOp::Rri(PURE_OPS[i], d, a, v));
    let cmp = (0u8..8, 0u8..32, 0u8..32).prop_map(|(b, x, y)| GenOp::CmpBr(b, x, y));
    let slct = (0u8..8, 1u8..32, 0u8..32, 0u8..32).prop_map(|(b, d, x, y)| GenOp::Slct(b, d, x, y));
    prop_oneof![4 => pure, 2 => imm, 1 => cmp, 1 => slct]
}

fn to_op(g: &GenOp) -> Op {
    match *g {
        GenOp::Rrr(opc, d, a, b) => Op::rrr(opc, Gpr::new(d), Gpr::new(a), Gpr::new(b)),
        GenOp::Rri(opc, d, a, v) => Op::rri(opc, Gpr::new(d), Gpr::new(a), v),
        GenOp::CmpBr(b, x, y) => Op::new(
            Opcode::CmpLtu,
            Dest::Br(Br::new(b)),
            &[Gpr::new(x).into(), Gpr::new(y).into()],
        ),
        GenOp::Slct(b, d, x, y) => Op::new(
            Opcode::Slct,
            Dest::Gpr(Gpr::new(d)),
            &[Br::new(b).into(), Gpr::new(x).into(), Gpr::new(y).into()],
        ),
    }
}

/// Plain sequential reference semantics.
fn reference_run(ops: &[Op], init: &[u32; 32]) -> ([u32; 32], [bool; 8]) {
    let mut gpr = [0u32; 64];
    gpr[..32].copy_from_slice(init);
    gpr[0] = 0;
    let mut br = [false; 8];
    for op in ops {
        let srcs: Vec<u32> = op
            .srcs()
            .iter()
            .map(|s| match *s {
                Src::Gpr(r) => gpr[r.index() as usize],
                Src::Br(b) => u32::from(br[b.index() as usize]),
                Src::Imm(v) => v as u32,
            })
            .collect();
        let v = eval_pure(op.opcode, &srcs);
        match op.dest {
            Dest::Gpr(r) if !r.is_zero() => gpr[r.index() as usize] = v,
            Dest::Br(b) => br[b.index() as usize] = v != 0,
            _ => {}
        }
    }
    let mut out = [0u32; 32];
    out.copy_from_slice(&gpr[..32]);
    (out, br)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn scheduled_execution_matches_sequential_semantics(
        gens in proptest::collection::vec(gen_op(), 1..60),
        init in proptest::array::uniform32(any::<u32>()),
    ) {
        let ops: Vec<Op> = gens.iter().map(to_op).collect();

        // Reference: sequential interpretation.
        let (ref_gpr, ref_br) = reference_run(&ops, &init);

        // Machine: schedule and execute.
        let mut b = Builder::new("prop");
        for op in &ops {
            b.op(*op);
        }
        b.halt();
        let code = schedule_st200(&b.build()).expect("random pure programs schedule");
        let mut m = Machine::st200();
        for (i, &v) in init.iter().enumerate() {
            m.set_gpr(Gpr::new(i as u8), v);
        }
        m.run(&code).expect("runs to halt");

        for i in 0..32u8 {
            prop_assert_eq!(
                m.gpr(Gpr::new(i)),
                ref_gpr[i as usize],
                "GPR {} after {} ops",
                i,
                ops.len()
            );
        }
        for i in 0..8u8 {
            prop_assert_eq!(m.br(Br::new(i)), ref_br[i as usize], "BR {}", i);
        }
    }

    #[test]
    fn scheduler_never_exceeds_sequential_length(
        gens in proptest::collection::vec(gen_op(), 1..60),
    ) {
        let ops: Vec<Op> = gens.iter().map(to_op).collect();
        let n = ops.len();
        let mut b = Builder::new("prop");
        for op in &ops {
            b.op(*op);
        }
        b.halt();
        let code = schedule_st200(&b.build()).unwrap();
        // A list schedule is at most as long as fully serial issue with
        // worst-case per-op latency (multiplies: 3).
        prop_assert!(code.bundles().len() <= 3 * n + 2, "{} bundles for {} ops", code.bundles().len(), n);
    }
}
