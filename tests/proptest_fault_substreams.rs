//! Substream-derivation properties for the fault crate, in isolation.
//!
//! The supervisor, the sweep engine and the explore search all lean on
//! one discipline: [`FaultPlan::injector`] derives an independent RNG
//! substream per (seed, component, salt) tuple, and
//! [`FaultPlan::reseed_for_attempt`] derives an independent plan per
//! retry attempt. Until now these were only covered indirectly through
//! supervisor runs; here they are pinned directly:
//!
//! 1. Identical tuples yield identical streams — draw for draw.
//! 2. Distinct tuples yield pairwise-distinct streams (over a fixed
//!    grid of seeds × components × salts, compared by a draw prefix).
//! 3. `reseed_for_attempt(0)` is the identity; distinct attempts give
//!    distinct plans whose substreams also differ.

use std::collections::BTreeMap;

use proptest::prelude::*;

use rvliw::fault::{FaultPlan, FaultProfile};

/// A fingerprint of one substream: its first `n` bounded uniform draws.
fn stream_prefix(plan: &FaultPlan, component: &str, salt: &str, n: usize) -> Vec<u64> {
    let mut inj = plan.injector(component, salt);
    (0..n).map(|_| inj.uniform(u64::MAX - 1)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same (seed, component, salt) tuple reproduces the same
    /// stream, draw for draw — independently derived injectors agree on
    /// arbitrary bounded draws.
    #[test]
    fn identical_tuples_yield_identical_streams(
        seed in any::<u64>(),
        component_index in 0usize..5,
        salt_parts in (0u32..1000, 0u32..1000),
        bounds in proptest::collection::vec(1u64..=u64::MAX - 1, 1..32),
    ) {
        let component =
            ["mem", "rfu", "lb", "explore-cd", "explore-gen-mutate"][component_index];
        let salt = format!("{}/{}", salt_parts.0, salt_parts.1);
        let plan = FaultPlan::from_profile(FaultProfile::None, seed);
        let mut a = plan.injector(component, &salt);
        let mut b = plan.injector(component, &salt);
        for max in bounds {
            prop_assert_eq!(a.uniform(max), b.uniform(max));
        }
    }

    /// Derivation depends only on (seed, component, salt): the fault
    /// profile never enters the hash, so a chaos-profile plan and a
    /// none-profile plan with the same seed derive the same substream.
    #[test]
    fn profile_does_not_perturb_substreams(seed in any::<u64>()) {
        let quiet = FaultPlan::from_profile(FaultProfile::None, seed);
        let noisy = FaultPlan::from_profile(FaultProfile::Chaos, seed);
        prop_assert_eq!(
            stream_prefix(&quiet, "mem", "Orig", 16),
            stream_prefix(&noisy, "mem", "Orig", 16)
        );
    }

    /// `reseed_for_attempt(0)` is the identity, and reseeding is a pure
    /// function of (plan, attempt).
    #[test]
    fn reseed_attempt_zero_is_identity(seed in any::<u64>(), attempt in 1u32..=64) {
        let plan = FaultPlan::from_profile(FaultProfile::None, seed);
        prop_assert_eq!(plan.reseed_for_attempt(0), plan);
        prop_assert_eq!(
            plan.reseed_for_attempt(attempt),
            plan.reseed_for_attempt(attempt)
        );
        prop_assert_ne!(plan.reseed_for_attempt(attempt).seed, plan.seed);
    }
}

/// Distinct (seed, component, salt) tuples yield pairwise-distinct
/// streams over a fixed grid — 4 seeds × 4 components × 4 salts = 64
/// tuples, fingerprinted by their first 8 draws. A collision anywhere
/// would mean two scenarios (or two retry attempts) silently sharing
/// perturbations.
#[test]
fn distinct_tuples_yield_distinct_streams() {
    let seeds = [0u64, 1, 7, 0xdead_beef];
    let components = ["mem", "rfu", "explore-cd", "explore-gen-mutate"];
    let salts = ["", "Orig", "0/1", "1x32 b=5"];
    let mut seen: BTreeMap<Vec<u64>, (u64, &str, &str)> = BTreeMap::new();
    for &seed in &seeds {
        let plan = FaultPlan::from_profile(FaultProfile::None, seed);
        for &component in &components {
            for &salt in &salts {
                let fp = stream_prefix(&plan, component, salt, 8);
                if let Some(prev) = seen.insert(fp, (seed, component, salt)) {
                    panic!(
                        "substream collision: ({seed}, {component:?}, {salt:?}) \
                         matches {prev:?}"
                    );
                }
            }
        }
    }
    assert_eq!(seen.len(), seeds.len() * components.len() * salts.len());
}

/// Distinct retry attempts derive pairwise-distinct plans, and each
/// derived plan's substreams differ from the base plan's.
#[test]
fn distinct_attempts_yield_distinct_streams() {
    let plan = FaultPlan::from_profile(FaultProfile::None, 42);
    let mut seen: BTreeMap<Vec<u64>, u32> = BTreeMap::new();
    for attempt in 0u32..16 {
        let reseeded = plan.reseed_for_attempt(attempt);
        let fp = stream_prefix(&reseeded, "mem", "Orig", 8);
        if let Some(prev) = seen.insert(fp, attempt) {
            panic!("attempt {attempt} collides with attempt {prev}");
        }
    }
    assert_eq!(seen.len(), 16);
}
