//! Properties of the design-space exploration engine (`rvliw explore`).
//!
//! 1. Trajectory determinism: for a fixed (spec, seed) the full outcome
//!    — rendered to JSON bytes — is identical at one worker thread and
//!    at four, for both strategies.
//! 2. Cache transparency: the outcome is bit-identical with no cache,
//!    with a cold on-disk cache, and with a warm one — and the warm run
//!    actually hits the cache.
//! 3. Pareto-archive invariants: no archived point dominates another,
//!    every offered point is covered by the final archive, and the
//!    frontier ordering is deterministic.
//! 4. Budget exactness: unique evaluations never exceed the budget or
//!    the space size; revisits are free.
//! 5. Replay: every frontier point's embedded spec re-runs through the
//!    sweep engine to the archived numbers, bit for bit.
//! 6. Spec hygiene: malformed exploration specs come back as typed
//!    [`SpecError`]s — never a panic.
//!
//! This file rides in the no-panic clippy gate alongside the library
//! crates, so fallible setup goes through [`ok`] instead of `unwrap`.

use std::collections::BTreeSet;
use std::fmt::Display;
use std::path::PathBuf;

use proptest::prelude::*;

use rvliw::exp::{
    run_explore, ExploreSpec, ParetoArchive, ParetoPoint, ScenarioCache, SpecError,
    SupervisorConfig, Sweep, Workload,
};

/// Unwraps a fallible setup step with a labelled panic (the clippy gate
/// forbids `unwrap`/`expect` in this target).
fn ok<T, E: Display>(what: &str, r: Result<T, E>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("{what}: {e}"),
    }
}

fn nop(_: &str) {}

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rvliw-proptest-explore-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    ok("create tmpdir", std::fs::create_dir_all(&dir));
    dir
}

/// A small but multi-axis exploration spec: 3 engines × 2 betas × 2
/// approximations = 12 design points, searched under a budget of 7 so
/// the budget cap is actually exercised.
fn spec_text(strategy: &str, budget: usize) -> String {
    format!(
        r#"{{
  "name": "prop_explore",
  "frames": 2,
  "budget": {budget},
  "strategy": "{strategy}",
  "population": 4,
  "space": {{
    "engine": ["1x32", "2x64", "2lb"],
    "betas": [1, 5],
    "approx": ["exact", "rows/2"]
  }}
}}"#
    )
}

fn spec(strategy: &str, budget: usize) -> ExploreSpec {
    ok(
        "parse exploration spec",
        ExploreSpec::from_json_str(&spec_text(strategy, budget)),
    )
}

/// Trajectory determinism: same (spec, seed) → byte-identical outcome
/// JSON at 1 and 4 worker threads, for both strategies. The thread
/// count only parallelises fitness batches; it must never leak into the
/// search.
#[test]
fn same_seed_is_byte_identical_across_thread_counts() {
    let w = Workload::tiny();
    let config = SupervisorConfig::default();
    for strategy in ["coordinate-descent", "generational"] {
        let s = spec(strategy, 7);
        for seed in [0u64, 7, 42] {
            let one = run_explore(&s, seed, &w, 1, nop, None, &config).to_json_string();
            let four = run_explore(&s, seed, &w, 4, nop, None, &config).to_json_string();
            assert_eq!(one, four, "{strategy} seed {seed}: thread count leaked");
        }
    }
}

/// Cache transparency: no-cache, cold-cache and warm-cache runs all
/// render the same bytes; the warm run serves at least one hit and the
/// budget accounting (unique evaluations) is unchanged.
#[test]
fn cold_and_warm_caches_do_not_perturb_the_trajectory() {
    let w = Workload::tiny();
    let config = SupervisorConfig::default();
    let s = spec("coordinate-descent", 7);
    let seed = 7u64;

    let bare = run_explore(&s, seed, &w, 2, nop, None, &config);
    let dir = tmpdir("warm");

    let cold_cache = ok("open cold cache", ScenarioCache::open(&dir, &w, "tiny"));
    let cold = run_explore(&s, seed, &w, 2, nop, Some(&cold_cache), &config);
    let cold_counts = cold_cache.counts();

    let warm_cache = ok("open warm cache", ScenarioCache::open(&dir, &w, "tiny"));
    let warm = run_explore(&s, seed, &w, 4, nop, Some(&warm_cache), &config);
    let warm_counts = warm_cache.counts();

    assert_eq!(bare.to_json_string(), cold.to_json_string());
    assert_eq!(bare.to_json_string(), warm.to_json_string());
    assert_eq!(
        cold.evaluations, warm.evaluations,
        "cache hits stay charged"
    );
    assert_eq!(cold_counts.hits, 0, "first run cannot hit");
    assert!(cold_counts.writes >= 1, "first run populates the cache");
    assert!(warm_counts.hits >= 1, "second run must hit the cache");
    assert_eq!(warm_counts.misses, 0, "warm run re-simulated a point");
}

/// Budget exactness: unique evaluations never exceed the budget or the
/// space size, the reported failures are evaluations too, and frontier
/// points are drawn from what was actually evaluated.
#[test]
fn evaluations_never_exceed_the_budget() {
    let w = Workload::tiny();
    let config = SupervisorConfig::default();
    for strategy in ["coordinate-descent", "generational"] {
        for budget in [1usize, 3, 7, 64] {
            let s = spec(strategy, budget);
            let out = run_explore(&s, 11, &w, 2, nop, None, &config);
            let cap = budget.min(s.space.size());
            assert!(
                out.evaluations <= cap,
                "{strategy} budget {budget}: {} evaluations > cap {cap}",
                out.evaluations
            );
            assert!(out.frontier.len() <= out.evaluations);
            assert!(out.failures.len() <= out.evaluations);
            // A budget that covers the whole space leaves nothing
            // unexplored for either strategy to stall on.
            if budget >= s.space.size() {
                assert!(!out.frontier.is_empty(), "{strategy}: empty frontier");
            }
        }
    }
}

/// Replay: each frontier point's embedded single-point spec expands to
/// exactly one scenario, and re-running it through the sweep engine on
/// the same workload reproduces the archived numbers exactly.
#[test]
fn frontier_specs_replay_to_the_archived_numbers() {
    let w = Workload::tiny();
    let config = SupervisorConfig::default();
    let s = spec("coordinate-descent", 12);
    let out = run_explore(&s, 7, &w, 2, nop, None, &config);
    assert!(!out.frontier.is_empty(), "nothing to replay");
    for f in &out.frontier {
        let sweep = ok("expand frontier spec", Sweep::expand(f.spec.clone()));
        assert_eq!(
            sweep.scenarios().len(),
            1,
            "{}: not single-point",
            f.point.label
        );
        let replay = sweep.run(&w, 1, nop);
        assert_eq!(replay.rows.len(), 1);
        let row = &replay.rows[0];
        assert_eq!(row.label, f.point.label);
        let me = ok("replay frontier point", row.result.as_ref());
        assert_eq!(
            me.me_cycles, f.point.me_cycles,
            "{}: cycles drifted",
            row.label
        );
        let (inflation, psnr) = me
            .quality
            .as_ref()
            .map_or((0.0, 0.0), |q| (q.sad_inflation, q.psnr_delta_db));
        assert_eq!(
            inflation.total_cmp(&f.point.sad_inflation),
            std::cmp::Ordering::Equal,
            "{}: inflation drifted",
            row.label
        );
        assert_eq!(
            psnr.total_cmp(&f.point.psnr_delta_db),
            std::cmp::Ordering::Equal,
            "{}: psnr drifted",
            row.label
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Archive invariants under arbitrary insertion orders: the final
    /// archive is mutually non-dominated, covers every offered point,
    /// never grows beyond the distinct-label count, and sorts
    /// deterministically.
    #[test]
    fn archive_is_nondominated_and_covers_every_offer(
        raw in proptest::collection::vec((0u64..8, 0u32..8), 1..40),
    ) {
        // As in the explorer, a label uniquely determines its
        // measurement (it names the candidate); repeats in `raw` model
        // re-offered points, not conflicting ones.
        let points: Vec<ParetoPoint> = raw
            .iter()
            .map(|&(cycles, infl)| ParetoPoint {
                label: format!("p{cycles}x{infl}"),
                me_cycles: cycles,
                sad_inflation: f64::from(infl) / 8.0,
                psnr_delta_db: 0.0,
            })
            .collect();

        let mut archive = ParetoArchive::new();
        let mut inserted = 0usize;
        for p in &points {
            if archive.insert(p.clone()) {
                inserted += 1;
            }
        }
        prop_assert!(!archive.is_empty());
        prop_assert!(archive.len() <= inserted);
        let labels: BTreeSet<&str> = points.iter().map(|p| p.label.as_str()).collect();
        prop_assert!(archive.len() <= labels.len());

        let sorted = archive.sorted();
        // Mutually non-dominated, unique labels.
        for (i, a) in sorted.iter().enumerate() {
            for (j, b) in sorted.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.dominates(b), "{} dominates archived {}", a.label, b.label);
                    prop_assert_ne!(&a.label, &b.label);
                }
            }
        }
        // Deterministic ascending order.
        for pair in sorted.windows(2) {
            prop_assert!(
                pair[0].me_cycles < pair[1].me_cycles
                    || (pair[0].me_cycles == pair[1].me_cycles
                        && pair[0].sad_inflation <= pair[1].sad_inflation)
            );
        }
        // Every offered point is accounted for: archived under its
        // label, or strictly dominated by something archived.
        for p in &points {
            prop_assert!(archive.covers(p), "{} escaped the archive", p.label);
        }
    }

    /// Trajectory determinism over proptest-chosen seeds and budgets:
    /// re-running the same exploration reproduces the same bytes, and
    /// the thread count never perturbs them.
    #[test]
    fn exploration_is_a_pure_function_of_spec_and_seed(
        seed in any::<u64>(),
        budget in 1usize..6,
        generational in any::<bool>(),
    ) {
        let strategy = if generational { "generational" } else { "coordinate-descent" };
        let s = spec(strategy, budget);
        let w = Workload::tiny();
        let config = SupervisorConfig::default();
        let a = run_explore(&s, seed, &w, 1, nop, None, &config).to_json_string();
        let b = run_explore(&s, seed, &w, 3, nop, None, &config).to_json_string();
        prop_assert_eq!(&a, &b, "thread count leaked into the trajectory");
        prop_assert!(a.contains("\"frontier\""));
    }
}

/// Malformed exploration specs fail with typed errors, never panics:
/// every rejection is a [`SpecError::Schema`] naming the offending
/// path (or [`SpecError::Json`] for non-JSON text).
#[test]
fn malformed_specs_yield_typed_errors() {
    let schema_cases: &[(&str, &str)] = &[
        // Empty required axis.
        (
            r#"{"name":"x","budget":4,"strategy":"generational",
                "space":{"engine":[],"betas":[1]}}"#,
            "engine",
        ),
        // Empty optional axis (present but empty is still invalid).
        (
            r#"{"name":"x","budget":4,"strategy":"generational",
                "space":{"engine":["2lb"],"betas":[1],"approx":[]}}"#,
            "approx",
        ),
        // Zero budget.
        (
            r#"{"name":"x","budget":0,"strategy":"generational",
                "space":{"engine":["2lb"],"betas":[1]}}"#,
            "budget",
        ),
        // Missing budget.
        (
            r#"{"name":"x","strategy":"generational",
                "space":{"engine":["2lb"],"betas":[1]}}"#,
            "budget",
        ),
        // Unknown strategy.
        (
            r#"{"name":"x","budget":4,"strategy":"simulated-annealing",
                "space":{"engine":["2lb"],"betas":[1]}}"#,
            "strategy",
        ),
        // Objective typo.
        (
            r#"{"name":"x","budget":4,"strategy":"generational",
                "objectives":["me_cycles","sad_inflaton"],
                "space":{"engine":["2lb"],"betas":[1]}}"#,
            "objectives",
        ),
        // Incomplete objectives (both axes are mandatory).
        (
            r#"{"name":"x","budget":4,"strategy":"generational",
                "objectives":["me_cycles"],
                "space":{"engine":["2lb"],"betas":[1]}}"#,
            "objectives",
        ),
        // Missing space.
        (
            r#"{"name":"x","budget":4,"strategy":"generational"}"#,
            "space",
        ),
        // Duplicate axis value.
        (
            r#"{"name":"x","budget":4,"strategy":"generational",
                "space":{"engine":["2lb","2lb"],"betas":[1]}}"#,
            "engine",
        ),
        // Population too small for a generational search.
        (
            r#"{"name":"x","budget":4,"strategy":"generational","population":1,
                "space":{"engine":["2lb"],"betas":[1]}}"#,
            "population",
        ),
        // Unknown engine token.
        (
            r#"{"name":"x","budget":4,"strategy":"generational",
                "space":{"engine":["4x128"],"betas":[1]}}"#,
            "engine",
        ),
        // Unknown top-level key.
        (
            r#"{"name":"x","budget":4,"strategy":"generational","threads":4,
                "space":{"engine":["2lb"],"betas":[1]}}"#,
            "threads",
        ),
    ];
    for (text, needle) in schema_cases {
        match ExploreSpec::from_json_str(text) {
            Err(SpecError::Schema { path, message }) => assert!(
                path.contains(needle) || message.contains(needle),
                "error for {text:?} names neither path nor message with {needle:?}: \
                 path={path:?} message={message:?}"
            ),
            other => panic!("{text:?}: expected a schema error, got {other:?}"),
        }
    }

    // Non-JSON text is a parse error, not a panic.
    assert!(matches!(
        ExploreSpec::from_json_str("not json at all {"),
        Err(SpecError::Json(_))
    ));
    // A JSON scalar is typed too (schema, not panic).
    assert!(ExploreSpec::from_json_str("42").is_err());
}
