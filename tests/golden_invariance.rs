//! Golden invariance of the content-addressed cache under the
//! approximation axis and the fetch/issue substrate axis.
//!
//! The approximate-ME work added `approx`/`search` fields to [`Scenario`],
//! rerouted the instruction-level program build through
//! `build_getsad_approx` and extended the result payload with an optional
//! quality block; the substrate work later added a `substrate` field to
//! `MachineConfig`. None of that may move a single pre-existing cache key:
//! a warm cache populated before either axis existed must keep hitting.
//!
//! The hex digests below were captured by the pre-change build (same
//! workload, same scenarios). They are fixtures, not derived values — do
//! not regenerate them from the code under test.

use rvliw::exp::{scenario_key, workload_digest, Scenario, Substrate, Workload};
use rvliw::rfu::RfuBandwidth;

fn tiny() -> Workload {
    Workload::tiny()
}

#[test]
fn tiny_workload_digest_is_stable() {
    assert_eq!(
        workload_digest(&tiny()).hex(),
        "7151fa919db994634ed0b82612ed9887"
    );
}

#[test]
fn paper_grid_scenario_keys_are_stable() {
    let digest = workload_digest(&tiny());
    let expected = [
        (Scenario::orig(), "cea882f92fcb1350cd347468db5779a4"),
        (Scenario::a1(), "1c60ac26421e37d53b9e574c2e0e3831"),
        (Scenario::a2(), "ed65772231c83055b03188dded8bb369"),
        (Scenario::a3(), "2df9f03b155a7e0e020eb2c3f27507a2"),
        (
            Scenario::loop_level(RfuBandwidth::B1x32, 1),
            "4cec9115c2ec5f6f9428618d1c58a373",
        ),
        (
            Scenario::loop_level(RfuBandwidth::B1x32, 5),
            "605c29a685e9f0cfe49979d98dbc3353",
        ),
        (
            Scenario::loop_level(RfuBandwidth::B1x64, 1),
            "906633916208bfc38db153eee8a6e0e7",
        ),
        (
            Scenario::loop_level(RfuBandwidth::B1x64, 5),
            "bd35261444166fd3726b8dba4ffdedb7",
        ),
        (
            Scenario::loop_level(RfuBandwidth::B2x64, 1),
            "687b7ff1f26e4f0fcefba19beed5dee3",
        ),
        (
            Scenario::loop_level(RfuBandwidth::B2x64, 5),
            "0b7cdad91172b6f7ba9bc06dd01051bb",
        ),
        (Scenario::loop_two_lb(1), "6fcd67829628381f4059334db0480cb3"),
        (Scenario::loop_two_lb(5), "4fd63cae67a7708f1e6b2a56813b9183"),
    ];
    for (sc, hex) in expected {
        assert_eq!(
            scenario_key(&sc, digest).hex(),
            hex,
            "key moved for `{}` — pre-axis cache entries would all miss",
            sc.label
        );
        // The scalar-substrate twin of the same scenario must key
        // differently: its cycle counts are different, so a shared key
        // would replay VLIW timings as scalar results.
        let scalar = sc.clone().with_substrate(Substrate::ScalarInOrder);
        assert_ne!(
            scenario_key(&scalar, digest).hex(),
            hex,
            "scalar twin of `{}` collides with the VLIW key",
            sc.label
        );
    }
}
