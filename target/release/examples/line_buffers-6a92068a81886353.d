/root/repo/target/release/examples/line_buffers-6a92068a81886353.d: examples/line_buffers.rs

/root/repo/target/release/examples/line_buffers-6a92068a81886353: examples/line_buffers.rs

examples/line_buffers.rs:
