/root/repo/target/release/examples/quickstart-8f6d98f09630cbf7.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8f6d98f09630cbf7: examples/quickstart.rs

examples/quickstart.rs:
