/root/repo/target/release/examples/explore_design_space-0c644f39e7bba045.d: examples/explore_design_space.rs

/root/repo/target/release/examples/explore_design_space-0c644f39e7bba045: examples/explore_design_space.rs

examples/explore_design_space.rs:
