/root/repo/target/release/examples/disassemble_kernel-5df52b1bcb6f313e.d: examples/disassemble_kernel.rs

/root/repo/target/release/examples/disassemble_kernel-5df52b1bcb6f313e: examples/disassemble_kernel.rs

examples/disassemble_kernel.rs:
