/root/repo/target/release/examples/encode_video-774a25e3dc54f002.d: examples/encode_video.rs

/root/repo/target/release/examples/encode_video-774a25e3dc54f002: examples/encode_video.rs

examples/encode_video.rs:
