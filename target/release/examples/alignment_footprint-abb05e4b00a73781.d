/root/repo/target/release/examples/alignment_footprint-abb05e4b00a73781.d: examples/alignment_footprint.rs

/root/repo/target/release/examples/alignment_footprint-abb05e4b00a73781: examples/alignment_footprint.rs

examples/alignment_footprint.rs:
