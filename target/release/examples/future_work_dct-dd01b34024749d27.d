/root/repo/target/release/examples/future_work_dct-dd01b34024749d27.d: examples/future_work_dct.rs

/root/repo/target/release/examples/future_work_dct-dd01b34024749d27: examples/future_work_dct.rs

examples/future_work_dct.rs:
