/root/repo/target/release/examples/assemble_and_run-72d5d58488432139.d: examples/assemble_and_run.rs

/root/repo/target/release/examples/assemble_and_run-72d5d58488432139: examples/assemble_and_run.rs

examples/assemble_and_run.rs:
