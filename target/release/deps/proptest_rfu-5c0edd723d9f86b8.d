/root/repo/target/release/deps/proptest_rfu-5c0edd723d9f86b8.d: tests/proptest_rfu.rs

/root/repo/target/release/deps/proptest_rfu-5c0edd723d9f86b8: tests/proptest_rfu.rs

tests/proptest_rfu.rs:
