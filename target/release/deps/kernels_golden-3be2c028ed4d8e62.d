/root/repo/target/release/deps/kernels_golden-3be2c028ed4d8e62.d: tests/kernels_golden.rs

/root/repo/target/release/deps/kernels_golden-3be2c028ed4d8e62: tests/kernels_golden.rs

tests/kernels_golden.rs:
