/root/repo/target/release/deps/rvliw_asm-6eb212e96b1b20b3.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/code.rs crates/asm/src/parse.rs crates/asm/src/program.rs crates/asm/src/sched.rs

/root/repo/target/release/deps/rvliw_asm-6eb212e96b1b20b3: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/code.rs crates/asm/src/parse.rs crates/asm/src/program.rs crates/asm/src/sched.rs

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/code.rs:
crates/asm/src/parse.rs:
crates/asm/src/program.rs:
crates/asm/src/sched.rs:
