/root/repo/target/release/deps/rvliw_kernels-235a4e44bf00fc61.d: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs

/root/repo/target/release/deps/librvliw_kernels-235a4e44bf00fc61.rlib: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs

/root/repo/target/release/deps/librvliw_kernels-235a4e44bf00fc61.rmeta: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs

crates/kernels/src/lib.rs:
crates/kernels/src/dct.rs:
crates/kernels/src/driver.rs:
crates/kernels/src/getsad.rs:
crates/kernels/src/mc.rs:
crates/kernels/src/regs.rs:
