/root/repo/target/release/deps/rvliw_isa-b5f2856556b07ae2.d: crates/isa/src/lib.rs crates/isa/src/bundle.rs crates/isa/src/config.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs crates/isa/src/simd.rs

/root/repo/target/release/deps/librvliw_isa-b5f2856556b07ae2.rlib: crates/isa/src/lib.rs crates/isa/src/bundle.rs crates/isa/src/config.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs crates/isa/src/simd.rs

/root/repo/target/release/deps/librvliw_isa-b5f2856556b07ae2.rmeta: crates/isa/src/lib.rs crates/isa/src/bundle.rs crates/isa/src/config.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs crates/isa/src/simd.rs

crates/isa/src/lib.rs:
crates/isa/src/bundle.rs:
crates/isa/src/config.rs:
crates/isa/src/encode.rs:
crates/isa/src/op.rs:
crates/isa/src/opcode.rs:
crates/isa/src/reg.rs:
crates/isa/src/simd.rs:
