/root/repo/target/release/deps/tables-586c36c57618502d.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-586c36c57618502d: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
