/root/repo/target/release/deps/rvliw_sim-99310f6b55e33709.d: crates/sim/src/lib.rs crates/sim/src/decode.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/librvliw_sim-99310f6b55e33709.rlib: crates/sim/src/lib.rs crates/sim/src/decode.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/librvliw_sim-99310f6b55e33709.rmeta: crates/sim/src/lib.rs crates/sim/src/decode.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/decode.rs:
crates/sim/src/exec.rs:
crates/sim/src/machine.rs:
crates/sim/src/stats.rs:
