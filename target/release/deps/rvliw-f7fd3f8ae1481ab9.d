/root/repo/target/release/deps/rvliw-f7fd3f8ae1481ab9.d: src/bin/rvliw.rs

/root/repo/target/release/deps/rvliw-f7fd3f8ae1481ab9: src/bin/rvliw.rs

src/bin/rvliw.rs:
