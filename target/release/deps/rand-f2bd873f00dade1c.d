/root/repo/target/release/deps/rand-f2bd873f00dade1c.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/chacha.rs vendor/rand/src/uniform.rs

/root/repo/target/release/deps/rand-f2bd873f00dade1c: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/chacha.rs vendor/rand/src/uniform.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/chacha.rs:
vendor/rand/src/uniform.rs:
