/root/repo/target/release/deps/proptest_mpeg4-169e5946ee682863.d: tests/proptest_mpeg4.rs

/root/repo/target/release/deps/proptest_mpeg4-169e5946ee682863: tests/proptest_mpeg4.rs

tests/proptest_mpeg4.rs:
