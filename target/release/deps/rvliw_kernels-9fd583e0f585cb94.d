/root/repo/target/release/deps/rvliw_kernels-9fd583e0f585cb94.d: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs

/root/repo/target/release/deps/rvliw_kernels-9fd583e0f585cb94: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs

crates/kernels/src/lib.rs:
crates/kernels/src/dct.rs:
crates/kernels/src/driver.rs:
crates/kernels/src/getsad.rs:
crates/kernels/src/mc.rs:
crates/kernels/src/regs.rs:
