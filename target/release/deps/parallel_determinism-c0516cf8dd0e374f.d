/root/repo/target/release/deps/parallel_determinism-c0516cf8dd0e374f.d: crates/core/tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-c0516cf8dd0e374f: crates/core/tests/parallel_determinism.rs

crates/core/tests/parallel_determinism.rs:
