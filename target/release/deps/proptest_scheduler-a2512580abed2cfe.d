/root/repo/target/release/deps/proptest_scheduler-a2512580abed2cfe.d: tests/proptest_scheduler.rs

/root/repo/target/release/deps/proptest_scheduler-a2512580abed2cfe: tests/proptest_scheduler.rs

tests/proptest_scheduler.rs:
