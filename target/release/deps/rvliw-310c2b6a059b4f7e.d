/root/repo/target/release/deps/rvliw-310c2b6a059b4f7e.d: src/bin/rvliw.rs

/root/repo/target/release/deps/rvliw-310c2b6a059b4f7e: src/bin/rvliw.rs

src/bin/rvliw.rs:
