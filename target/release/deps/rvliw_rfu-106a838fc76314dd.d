/root/repo/target/release/deps/rvliw_rfu-106a838fc76314dd.d: crates/rfu/src/lib.rs crates/rfu/src/config.rs crates/rfu/src/dct.rs crates/rfu/src/line_buffer.rs crates/rfu/src/meloop.rs crates/rfu/src/reconfig.rs crates/rfu/src/stats.rs crates/rfu/src/unit.rs

/root/repo/target/release/deps/librvliw_rfu-106a838fc76314dd.rlib: crates/rfu/src/lib.rs crates/rfu/src/config.rs crates/rfu/src/dct.rs crates/rfu/src/line_buffer.rs crates/rfu/src/meloop.rs crates/rfu/src/reconfig.rs crates/rfu/src/stats.rs crates/rfu/src/unit.rs

/root/repo/target/release/deps/librvliw_rfu-106a838fc76314dd.rmeta: crates/rfu/src/lib.rs crates/rfu/src/config.rs crates/rfu/src/dct.rs crates/rfu/src/line_buffer.rs crates/rfu/src/meloop.rs crates/rfu/src/reconfig.rs crates/rfu/src/stats.rs crates/rfu/src/unit.rs

crates/rfu/src/lib.rs:
crates/rfu/src/config.rs:
crates/rfu/src/dct.rs:
crates/rfu/src/line_buffer.rs:
crates/rfu/src/meloop.rs:
crates/rfu/src/reconfig.rs:
crates/rfu/src/stats.rs:
crates/rfu/src/unit.rs:
