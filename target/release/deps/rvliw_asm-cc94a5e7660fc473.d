/root/repo/target/release/deps/rvliw_asm-cc94a5e7660fc473.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/code.rs crates/asm/src/parse.rs crates/asm/src/program.rs crates/asm/src/sched.rs

/root/repo/target/release/deps/librvliw_asm-cc94a5e7660fc473.rlib: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/code.rs crates/asm/src/parse.rs crates/asm/src/program.rs crates/asm/src/sched.rs

/root/repo/target/release/deps/librvliw_asm-cc94a5e7660fc473.rmeta: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/code.rs crates/asm/src/parse.rs crates/asm/src/program.rs crates/asm/src/sched.rs

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/code.rs:
crates/asm/src/parse.rs:
crates/asm/src/program.rs:
crates/asm/src/sched.rs:
