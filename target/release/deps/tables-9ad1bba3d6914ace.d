/root/repo/target/release/deps/tables-9ad1bba3d6914ace.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-9ad1bba3d6914ace: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
