/root/repo/target/release/deps/proptest_isa-572629e64b074007.d: tests/proptest_isa.rs

/root/repo/target/release/deps/proptest_isa-572629e64b074007: tests/proptest_isa.rs

tests/proptest_isa.rs:
