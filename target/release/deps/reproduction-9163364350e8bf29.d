/root/repo/target/release/deps/reproduction-9163364350e8bf29.d: tests/reproduction.rs

/root/repo/target/release/deps/reproduction-9163364350e8bf29: tests/reproduction.rs

tests/reproduction.rs:
