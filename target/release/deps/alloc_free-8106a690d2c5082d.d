/root/repo/target/release/deps/alloc_free-8106a690d2c5082d.d: crates/sim/tests/alloc_free.rs

/root/repo/target/release/deps/alloc_free-8106a690d2c5082d: crates/sim/tests/alloc_free.rs

crates/sim/tests/alloc_free.rs:
