/root/repo/target/release/deps/rvliw_isa-645e419c9f31261e.d: crates/isa/src/lib.rs crates/isa/src/bundle.rs crates/isa/src/config.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs crates/isa/src/simd.rs

/root/repo/target/release/deps/rvliw_isa-645e419c9f31261e: crates/isa/src/lib.rs crates/isa/src/bundle.rs crates/isa/src/config.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs crates/isa/src/simd.rs

crates/isa/src/lib.rs:
crates/isa/src/bundle.rs:
crates/isa/src/config.rs:
crates/isa/src/encode.rs:
crates/isa/src/op.rs:
crates/isa/src/opcode.rs:
crates/isa/src/reg.rs:
crates/isa/src/simd.rs:
