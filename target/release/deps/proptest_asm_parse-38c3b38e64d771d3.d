/root/repo/target/release/deps/proptest_asm_parse-38c3b38e64d771d3.d: tests/proptest_asm_parse.rs

/root/repo/target/release/deps/proptest_asm_parse-38c3b38e64d771d3: tests/proptest_asm_parse.rs

tests/proptest_asm_parse.rs:
