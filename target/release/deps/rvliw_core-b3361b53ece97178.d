/root/repo/target/release/deps/rvliw_core-b3361b53ece97178.d: crates/core/src/lib.rs crates/core/src/app_model.rs crates/core/src/arch.rs crates/core/src/breakdown.rs crates/core/src/runner.rs crates/core/src/scenario.rs crates/core/src/tables.rs crates/core/src/workload.rs

/root/repo/target/release/deps/rvliw_core-b3361b53ece97178: crates/core/src/lib.rs crates/core/src/app_model.rs crates/core/src/arch.rs crates/core/src/breakdown.rs crates/core/src/runner.rs crates/core/src/scenario.rs crates/core/src/tables.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/app_model.rs:
crates/core/src/arch.rs:
crates/core/src/breakdown.rs:
crates/core/src/runner.rs:
crates/core/src/scenario.rs:
crates/core/src/tables.rs:
crates/core/src/workload.rs:
