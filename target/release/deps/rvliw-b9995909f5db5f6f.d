/root/repo/target/release/deps/rvliw-b9995909f5db5f6f.d: src/lib.rs

/root/repo/target/release/deps/rvliw-b9995909f5db5f6f: src/lib.rs

src/lib.rs:
