/root/repo/target/release/deps/sim_throughput-91f65cdbb5754742.d: crates/bench/benches/sim_throughput.rs

/root/repo/target/release/deps/sim_throughput-91f65cdbb5754742: crates/bench/benches/sim_throughput.rs

crates/bench/benches/sim_throughput.rs:
