/root/repo/target/release/deps/rvliw_bench-b9916788cb6861a8.d: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/librvliw_bench-b9916788cb6861a8.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/librvliw_bench-b9916788cb6861a8.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
