/root/repo/target/release/deps/rvliw_rfu-84da7ea5ad162948.d: crates/rfu/src/lib.rs crates/rfu/src/config.rs crates/rfu/src/dct.rs crates/rfu/src/line_buffer.rs crates/rfu/src/meloop.rs crates/rfu/src/reconfig.rs crates/rfu/src/stats.rs crates/rfu/src/unit.rs

/root/repo/target/release/deps/rvliw_rfu-84da7ea5ad162948: crates/rfu/src/lib.rs crates/rfu/src/config.rs crates/rfu/src/dct.rs crates/rfu/src/line_buffer.rs crates/rfu/src/meloop.rs crates/rfu/src/reconfig.rs crates/rfu/src/stats.rs crates/rfu/src/unit.rs

crates/rfu/src/lib.rs:
crates/rfu/src/config.rs:
crates/rfu/src/dct.rs:
crates/rfu/src/line_buffer.rs:
crates/rfu/src/meloop.rs:
crates/rfu/src/reconfig.rs:
crates/rfu/src/stats.rs:
crates/rfu/src/unit.rs:
