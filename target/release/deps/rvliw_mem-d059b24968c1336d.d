/root/repo/target/release/deps/rvliw_mem-d059b24968c1336d.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/prefetch.rs crates/mem/src/ram.rs crates/mem/src/stats.rs crates/mem/src/system.rs

/root/repo/target/release/deps/rvliw_mem-d059b24968c1336d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/prefetch.rs crates/mem/src/ram.rs crates/mem/src/stats.rs crates/mem/src/system.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/prefetch.rs:
crates/mem/src/ram.rs:
crates/mem/src/stats.rs:
crates/mem/src/system.rs:
