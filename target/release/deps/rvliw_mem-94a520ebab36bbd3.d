/root/repo/target/release/deps/rvliw_mem-94a520ebab36bbd3.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/prefetch.rs crates/mem/src/ram.rs crates/mem/src/stats.rs crates/mem/src/system.rs

/root/repo/target/release/deps/librvliw_mem-94a520ebab36bbd3.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/prefetch.rs crates/mem/src/ram.rs crates/mem/src/stats.rs crates/mem/src/system.rs

/root/repo/target/release/deps/librvliw_mem-94a520ebab36bbd3.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/prefetch.rs crates/mem/src/ram.rs crates/mem/src/stats.rs crates/mem/src/system.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/prefetch.rs:
crates/mem/src/ram.rs:
crates/mem/src/stats.rs:
crates/mem/src/system.rs:
