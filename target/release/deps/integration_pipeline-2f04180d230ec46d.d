/root/repo/target/release/deps/integration_pipeline-2f04180d230ec46d.d: tests/integration_pipeline.rs

/root/repo/target/release/deps/integration_pipeline-2f04180d230ec46d: tests/integration_pipeline.rs

tests/integration_pipeline.rs:
