/root/repo/target/release/deps/rand-fb5e3eccb86b491d.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/chacha.rs vendor/rand/src/uniform.rs

/root/repo/target/release/deps/librand-fb5e3eccb86b491d.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/chacha.rs vendor/rand/src/uniform.rs

/root/repo/target/release/deps/librand-fb5e3eccb86b491d.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/chacha.rs vendor/rand/src/uniform.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/chacha.rs:
vendor/rand/src/uniform.rs:
