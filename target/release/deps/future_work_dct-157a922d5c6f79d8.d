/root/repo/target/release/deps/future_work_dct-157a922d5c6f79d8.d: tests/future_work_dct.rs

/root/repo/target/release/deps/future_work_dct-157a922d5c6f79d8: tests/future_work_dct.rs

tests/future_work_dct.rs:
