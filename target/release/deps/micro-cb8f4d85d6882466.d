/root/repo/target/release/deps/micro-cb8f4d85d6882466.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-cb8f4d85d6882466: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
