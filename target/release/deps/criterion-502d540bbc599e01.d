/root/repo/target/release/deps/criterion-502d540bbc599e01.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-502d540bbc599e01: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
