/root/repo/target/release/deps/rvliw_sim-afd6fb17b04b67ee.d: crates/sim/src/lib.rs crates/sim/src/decode.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/rvliw_sim-afd6fb17b04b67ee: crates/sim/src/lib.rs crates/sim/src/decode.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/decode.rs:
crates/sim/src/exec.rs:
crates/sim/src/machine.rs:
crates/sim/src/stats.rs:
