/root/repo/target/release/deps/rvliw_bench-4c4969caf80544e7.d: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/rvliw_bench-4c4969caf80544e7: crates/bench/src/lib.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
