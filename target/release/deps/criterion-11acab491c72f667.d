/root/repo/target/release/deps/criterion-11acab491c72f667.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-11acab491c72f667.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-11acab491c72f667.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
