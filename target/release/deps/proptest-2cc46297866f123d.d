/root/repo/target/release/deps/proptest-2cc46297866f123d.d: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/proptest-2cc46297866f123d: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/array.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
