/root/repo/target/release/deps/rvliw-ef50b31170af1e6d.d: src/lib.rs

/root/repo/target/release/deps/librvliw-ef50b31170af1e6d.rlib: src/lib.rs

/root/repo/target/release/deps/librvliw-ef50b31170af1e6d.rmeta: src/lib.rs

src/lib.rs:
