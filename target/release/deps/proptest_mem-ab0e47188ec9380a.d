/root/repo/target/release/deps/proptest_mem-ab0e47188ec9380a.d: tests/proptest_mem.rs

/root/repo/target/release/deps/proptest_mem-ab0e47188ec9380a: tests/proptest_mem.rs

tests/proptest_mem.rs:
