/root/repo/target/debug/examples/quickstart-268506127217c6fc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-268506127217c6fc: examples/quickstart.rs

examples/quickstart.rs:
