/root/repo/target/debug/examples/explore_design_space-c392a2c75c81a254.d: examples/explore_design_space.rs

/root/repo/target/debug/examples/explore_design_space-c392a2c75c81a254: examples/explore_design_space.rs

examples/explore_design_space.rs:
