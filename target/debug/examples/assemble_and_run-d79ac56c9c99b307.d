/root/repo/target/debug/examples/assemble_and_run-d79ac56c9c99b307.d: examples/assemble_and_run.rs Cargo.toml

/root/repo/target/debug/examples/libassemble_and_run-d79ac56c9c99b307.rmeta: examples/assemble_and_run.rs Cargo.toml

examples/assemble_and_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
