/root/repo/target/debug/examples/encode_video-adb5ca8a50322d47.d: examples/encode_video.rs Cargo.toml

/root/repo/target/debug/examples/libencode_video-adb5ca8a50322d47.rmeta: examples/encode_video.rs Cargo.toml

examples/encode_video.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
