/root/repo/target/debug/examples/disassemble_kernel-0e2a26963baba9c3.d: examples/disassemble_kernel.rs Cargo.toml

/root/repo/target/debug/examples/libdisassemble_kernel-0e2a26963baba9c3.rmeta: examples/disassemble_kernel.rs Cargo.toml

examples/disassemble_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
