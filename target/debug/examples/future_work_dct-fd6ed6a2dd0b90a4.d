/root/repo/target/debug/examples/future_work_dct-fd6ed6a2dd0b90a4.d: examples/future_work_dct.rs Cargo.toml

/root/repo/target/debug/examples/libfuture_work_dct-fd6ed6a2dd0b90a4.rmeta: examples/future_work_dct.rs Cargo.toml

examples/future_work_dct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
