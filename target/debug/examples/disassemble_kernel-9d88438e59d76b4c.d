/root/repo/target/debug/examples/disassemble_kernel-9d88438e59d76b4c.d: examples/disassemble_kernel.rs

/root/repo/target/debug/examples/disassemble_kernel-9d88438e59d76b4c: examples/disassemble_kernel.rs

examples/disassemble_kernel.rs:
