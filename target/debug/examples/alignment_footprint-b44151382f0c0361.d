/root/repo/target/debug/examples/alignment_footprint-b44151382f0c0361.d: examples/alignment_footprint.rs Cargo.toml

/root/repo/target/debug/examples/libalignment_footprint-b44151382f0c0361.rmeta: examples/alignment_footprint.rs Cargo.toml

examples/alignment_footprint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
