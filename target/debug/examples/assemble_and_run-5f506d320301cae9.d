/root/repo/target/debug/examples/assemble_and_run-5f506d320301cae9.d: examples/assemble_and_run.rs

/root/repo/target/debug/examples/assemble_and_run-5f506d320301cae9: examples/assemble_and_run.rs

examples/assemble_and_run.rs:
