/root/repo/target/debug/examples/alignment_footprint-cfd692879385388b.d: examples/alignment_footprint.rs

/root/repo/target/debug/examples/alignment_footprint-cfd692879385388b: examples/alignment_footprint.rs

examples/alignment_footprint.rs:
