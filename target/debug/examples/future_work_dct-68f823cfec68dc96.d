/root/repo/target/debug/examples/future_work_dct-68f823cfec68dc96.d: examples/future_work_dct.rs

/root/repo/target/debug/examples/future_work_dct-68f823cfec68dc96: examples/future_work_dct.rs

examples/future_work_dct.rs:
