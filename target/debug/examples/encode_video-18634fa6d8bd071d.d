/root/repo/target/debug/examples/encode_video-18634fa6d8bd071d.d: examples/encode_video.rs

/root/repo/target/debug/examples/encode_video-18634fa6d8bd071d: examples/encode_video.rs

examples/encode_video.rs:
