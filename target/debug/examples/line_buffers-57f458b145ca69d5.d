/root/repo/target/debug/examples/line_buffers-57f458b145ca69d5.d: examples/line_buffers.rs

/root/repo/target/debug/examples/line_buffers-57f458b145ca69d5: examples/line_buffers.rs

examples/line_buffers.rs:
