/root/repo/target/debug/examples/line_buffers-0393832cedd72912.d: examples/line_buffers.rs Cargo.toml

/root/repo/target/debug/examples/libline_buffers-0393832cedd72912.rmeta: examples/line_buffers.rs Cargo.toml

examples/line_buffers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
