/root/repo/target/debug/examples/explore_design_space-fc830cf412ee7928.d: examples/explore_design_space.rs Cargo.toml

/root/repo/target/debug/examples/libexplore_design_space-fc830cf412ee7928.rmeta: examples/explore_design_space.rs Cargo.toml

examples/explore_design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
