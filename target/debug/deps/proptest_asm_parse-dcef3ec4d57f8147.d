/root/repo/target/debug/deps/proptest_asm_parse-dcef3ec4d57f8147.d: tests/proptest_asm_parse.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_asm_parse-dcef3ec4d57f8147.rmeta: tests/proptest_asm_parse.rs Cargo.toml

tests/proptest_asm_parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
