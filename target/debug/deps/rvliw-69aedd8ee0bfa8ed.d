/root/repo/target/debug/deps/rvliw-69aedd8ee0bfa8ed.d: src/bin/rvliw.rs Cargo.toml

/root/repo/target/debug/deps/librvliw-69aedd8ee0bfa8ed.rmeta: src/bin/rvliw.rs Cargo.toml

src/bin/rvliw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
