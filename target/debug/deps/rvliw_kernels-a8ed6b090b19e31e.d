/root/repo/target/debug/deps/rvliw_kernels-a8ed6b090b19e31e.d: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs

/root/repo/target/debug/deps/librvliw_kernels-a8ed6b090b19e31e.rlib: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs

/root/repo/target/debug/deps/librvliw_kernels-a8ed6b090b19e31e.rmeta: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs

crates/kernels/src/lib.rs:
crates/kernels/src/dct.rs:
crates/kernels/src/driver.rs:
crates/kernels/src/getsad.rs:
crates/kernels/src/mc.rs:
crates/kernels/src/regs.rs:
