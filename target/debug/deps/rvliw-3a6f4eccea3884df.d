/root/repo/target/debug/deps/rvliw-3a6f4eccea3884df.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librvliw-3a6f4eccea3884df.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
