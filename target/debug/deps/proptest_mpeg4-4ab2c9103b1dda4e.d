/root/repo/target/debug/deps/proptest_mpeg4-4ab2c9103b1dda4e.d: tests/proptest_mpeg4.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_mpeg4-4ab2c9103b1dda4e.rmeta: tests/proptest_mpeg4.rs Cargo.toml

tests/proptest_mpeg4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
