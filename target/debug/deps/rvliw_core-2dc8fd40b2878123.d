/root/repo/target/debug/deps/rvliw_core-2dc8fd40b2878123.d: crates/core/src/lib.rs crates/core/src/app_model.rs crates/core/src/arch.rs crates/core/src/breakdown.rs crates/core/src/runner.rs crates/core/src/scenario.rs crates/core/src/tables.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/librvliw_core-2dc8fd40b2878123.rlib: crates/core/src/lib.rs crates/core/src/app_model.rs crates/core/src/arch.rs crates/core/src/breakdown.rs crates/core/src/runner.rs crates/core/src/scenario.rs crates/core/src/tables.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/librvliw_core-2dc8fd40b2878123.rmeta: crates/core/src/lib.rs crates/core/src/app_model.rs crates/core/src/arch.rs crates/core/src/breakdown.rs crates/core/src/runner.rs crates/core/src/scenario.rs crates/core/src/tables.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/app_model.rs:
crates/core/src/arch.rs:
crates/core/src/breakdown.rs:
crates/core/src/runner.rs:
crates/core/src/scenario.rs:
crates/core/src/tables.rs:
crates/core/src/workload.rs:
