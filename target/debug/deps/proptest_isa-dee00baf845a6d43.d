/root/repo/target/debug/deps/proptest_isa-dee00baf845a6d43.d: tests/proptest_isa.rs

/root/repo/target/debug/deps/proptest_isa-dee00baf845a6d43: tests/proptest_isa.rs

tests/proptest_isa.rs:
