/root/repo/target/debug/deps/rvliw_bench-d14f98ad69e94b34.d: crates/bench/src/lib.rs crates/bench/src/paper.rs Cargo.toml

/root/repo/target/debug/deps/librvliw_bench-d14f98ad69e94b34.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
