/root/repo/target/debug/deps/rvliw_isa-7f21cb97927aecc8.d: crates/isa/src/lib.rs crates/isa/src/bundle.rs crates/isa/src/config.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs crates/isa/src/simd.rs Cargo.toml

/root/repo/target/debug/deps/librvliw_isa-7f21cb97927aecc8.rmeta: crates/isa/src/lib.rs crates/isa/src/bundle.rs crates/isa/src/config.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs crates/isa/src/simd.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/bundle.rs:
crates/isa/src/config.rs:
crates/isa/src/encode.rs:
crates/isa/src/op.rs:
crates/isa/src/opcode.rs:
crates/isa/src/reg.rs:
crates/isa/src/simd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
