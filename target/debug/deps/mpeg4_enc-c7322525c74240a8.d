/root/repo/target/debug/deps/mpeg4_enc-c7322525c74240a8.d: crates/mpeg4/src/lib.rs crates/mpeg4/src/bitstream.rs crates/mpeg4/src/dct.rs crates/mpeg4/src/decoder.rs crates/mpeg4/src/encoder.rs crates/mpeg4/src/footprint.rs crates/mpeg4/src/huffman.rs crates/mpeg4/src/mc.rs crates/mpeg4/src/me.rs crates/mpeg4/src/psnr.rs crates/mpeg4/src/quant.rs crates/mpeg4/src/rlc.rs crates/mpeg4/src/sad.rs crates/mpeg4/src/synth.rs crates/mpeg4/src/types.rs crates/mpeg4/src/zigzag.rs Cargo.toml

/root/repo/target/debug/deps/libmpeg4_enc-c7322525c74240a8.rmeta: crates/mpeg4/src/lib.rs crates/mpeg4/src/bitstream.rs crates/mpeg4/src/dct.rs crates/mpeg4/src/decoder.rs crates/mpeg4/src/encoder.rs crates/mpeg4/src/footprint.rs crates/mpeg4/src/huffman.rs crates/mpeg4/src/mc.rs crates/mpeg4/src/me.rs crates/mpeg4/src/psnr.rs crates/mpeg4/src/quant.rs crates/mpeg4/src/rlc.rs crates/mpeg4/src/sad.rs crates/mpeg4/src/synth.rs crates/mpeg4/src/types.rs crates/mpeg4/src/zigzag.rs Cargo.toml

crates/mpeg4/src/lib.rs:
crates/mpeg4/src/bitstream.rs:
crates/mpeg4/src/dct.rs:
crates/mpeg4/src/decoder.rs:
crates/mpeg4/src/encoder.rs:
crates/mpeg4/src/footprint.rs:
crates/mpeg4/src/huffman.rs:
crates/mpeg4/src/mc.rs:
crates/mpeg4/src/me.rs:
crates/mpeg4/src/psnr.rs:
crates/mpeg4/src/quant.rs:
crates/mpeg4/src/rlc.rs:
crates/mpeg4/src/sad.rs:
crates/mpeg4/src/synth.rs:
crates/mpeg4/src/types.rs:
crates/mpeg4/src/zigzag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
