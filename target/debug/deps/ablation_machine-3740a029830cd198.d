/root/repo/target/debug/deps/ablation_machine-3740a029830cd198.d: crates/bench/benches/ablation_machine.rs Cargo.toml

/root/repo/target/debug/deps/libablation_machine-3740a029830cd198.rmeta: crates/bench/benches/ablation_machine.rs Cargo.toml

crates/bench/benches/ablation_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
