/root/repo/target/debug/deps/rvliw_sim-44e1d299ffc589f1.d: crates/sim/src/lib.rs crates/sim/src/decode.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/rvliw_sim-44e1d299ffc589f1: crates/sim/src/lib.rs crates/sim/src/decode.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/decode.rs:
crates/sim/src/exec.rs:
crates/sim/src/machine.rs:
crates/sim/src/stats.rs:
