/root/repo/target/debug/deps/rvliw_mem-2b8ca46312367033.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/prefetch.rs crates/mem/src/ram.rs crates/mem/src/stats.rs crates/mem/src/system.rs Cargo.toml

/root/repo/target/debug/deps/librvliw_mem-2b8ca46312367033.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/prefetch.rs crates/mem/src/ram.rs crates/mem/src/stats.rs crates/mem/src/system.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/prefetch.rs:
crates/mem/src/ram.rs:
crates/mem/src/stats.rs:
crates/mem/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
