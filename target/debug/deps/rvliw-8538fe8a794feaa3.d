/root/repo/target/debug/deps/rvliw-8538fe8a794feaa3.d: src/bin/rvliw.rs

/root/repo/target/debug/deps/rvliw-8538fe8a794feaa3: src/bin/rvliw.rs

src/bin/rvliw.rs:
