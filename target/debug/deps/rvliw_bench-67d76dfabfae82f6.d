/root/repo/target/debug/deps/rvliw_bench-67d76dfabfae82f6.d: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/rvliw_bench-67d76dfabfae82f6: crates/bench/src/lib.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
