/root/repo/target/debug/deps/rvliw-ed907e69dfd07461.d: src/bin/rvliw.rs Cargo.toml

/root/repo/target/debug/deps/librvliw-ed907e69dfd07461.rmeta: src/bin/rvliw.rs Cargo.toml

src/bin/rvliw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
