/root/repo/target/debug/deps/reproduction-b7a1ddf40351a670.d: tests/reproduction.rs

/root/repo/target/debug/deps/reproduction-b7a1ddf40351a670: tests/reproduction.rs

tests/reproduction.rs:
