/root/repo/target/debug/deps/rvliw-bbafdb1527facb4b.d: src/lib.rs

/root/repo/target/debug/deps/rvliw-bbafdb1527facb4b: src/lib.rs

src/lib.rs:
