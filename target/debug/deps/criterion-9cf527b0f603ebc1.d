/root/repo/target/debug/deps/criterion-9cf527b0f603ebc1.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-9cf527b0f603ebc1: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
