/root/repo/target/debug/deps/rvliw_isa-289f21d5b31b4ab9.d: crates/isa/src/lib.rs crates/isa/src/bundle.rs crates/isa/src/config.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs crates/isa/src/simd.rs

/root/repo/target/debug/deps/librvliw_isa-289f21d5b31b4ab9.rlib: crates/isa/src/lib.rs crates/isa/src/bundle.rs crates/isa/src/config.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs crates/isa/src/simd.rs

/root/repo/target/debug/deps/librvliw_isa-289f21d5b31b4ab9.rmeta: crates/isa/src/lib.rs crates/isa/src/bundle.rs crates/isa/src/config.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs crates/isa/src/simd.rs

crates/isa/src/lib.rs:
crates/isa/src/bundle.rs:
crates/isa/src/config.rs:
crates/isa/src/encode.rs:
crates/isa/src/op.rs:
crates/isa/src/opcode.rs:
crates/isa/src/reg.rs:
crates/isa/src/simd.rs:
