/root/repo/target/debug/deps/table7_two_line_buffers-6f9e875f210b05e2.d: crates/bench/benches/table7_two_line_buffers.rs Cargo.toml

/root/repo/target/debug/deps/libtable7_two_line_buffers-6f9e875f210b05e2.rmeta: crates/bench/benches/table7_two_line_buffers.rs Cargo.toml

crates/bench/benches/table7_two_line_buffers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
