/root/repo/target/debug/deps/ablation_search-206c78a25bb48ccb.d: crates/bench/benches/ablation_search.rs Cargo.toml

/root/repo/target/debug/deps/libablation_search-206c78a25bb48ccb.rmeta: crates/bench/benches/ablation_search.rs Cargo.toml

crates/bench/benches/ablation_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
