/root/repo/target/debug/deps/future_work_dct-cefcbe83cf214e9e.d: tests/future_work_dct.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_work_dct-cefcbe83cf214e9e.rmeta: tests/future_work_dct.rs Cargo.toml

tests/future_work_dct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
