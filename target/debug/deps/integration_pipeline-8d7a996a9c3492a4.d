/root/repo/target/debug/deps/integration_pipeline-8d7a996a9c3492a4.d: tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-8d7a996a9c3492a4: tests/integration_pipeline.rs

tests/integration_pipeline.rs:
