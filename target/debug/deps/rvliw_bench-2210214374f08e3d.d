/root/repo/target/debug/deps/rvliw_bench-2210214374f08e3d.d: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/librvliw_bench-2210214374f08e3d.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/librvliw_bench-2210214374f08e3d.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
