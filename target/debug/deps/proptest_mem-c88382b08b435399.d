/root/repo/target/debug/deps/proptest_mem-c88382b08b435399.d: tests/proptest_mem.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_mem-c88382b08b435399.rmeta: tests/proptest_mem.rs Cargo.toml

tests/proptest_mem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
