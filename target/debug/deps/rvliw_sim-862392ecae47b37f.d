/root/repo/target/debug/deps/rvliw_sim-862392ecae47b37f.d: crates/sim/src/lib.rs crates/sim/src/decode.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/librvliw_sim-862392ecae47b37f.rmeta: crates/sim/src/lib.rs crates/sim/src/decode.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/stats.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/decode.rs:
crates/sim/src/exec.rs:
crates/sim/src/machine.rs:
crates/sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
