/root/repo/target/debug/deps/table2_loop_level-83e9bef99dfa33b4.d: crates/bench/benches/table2_loop_level.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_loop_level-83e9bef99dfa33b4.rmeta: crates/bench/benches/table2_loop_level.rs Cargo.toml

crates/bench/benches/table2_loop_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
