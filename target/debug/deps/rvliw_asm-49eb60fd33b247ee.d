/root/repo/target/debug/deps/rvliw_asm-49eb60fd33b247ee.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/code.rs crates/asm/src/parse.rs crates/asm/src/program.rs crates/asm/src/sched.rs

/root/repo/target/debug/deps/rvliw_asm-49eb60fd33b247ee: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/code.rs crates/asm/src/parse.rs crates/asm/src/program.rs crates/asm/src/sched.rs

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/code.rs:
crates/asm/src/parse.rs:
crates/asm/src/program.rs:
crates/asm/src/sched.rs:
