/root/repo/target/debug/deps/rvliw_rfu-dc290eac39210eba.d: crates/rfu/src/lib.rs crates/rfu/src/config.rs crates/rfu/src/dct.rs crates/rfu/src/line_buffer.rs crates/rfu/src/meloop.rs crates/rfu/src/reconfig.rs crates/rfu/src/stats.rs crates/rfu/src/unit.rs

/root/repo/target/debug/deps/rvliw_rfu-dc290eac39210eba: crates/rfu/src/lib.rs crates/rfu/src/config.rs crates/rfu/src/dct.rs crates/rfu/src/line_buffer.rs crates/rfu/src/meloop.rs crates/rfu/src/reconfig.rs crates/rfu/src/stats.rs crates/rfu/src/unit.rs

crates/rfu/src/lib.rs:
crates/rfu/src/config.rs:
crates/rfu/src/dct.rs:
crates/rfu/src/line_buffer.rs:
crates/rfu/src/meloop.rs:
crates/rfu/src/reconfig.rs:
crates/rfu/src/stats.rs:
crates/rfu/src/unit.rs:
