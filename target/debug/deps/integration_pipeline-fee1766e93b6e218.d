/root/repo/target/debug/deps/integration_pipeline-fee1766e93b6e218.d: tests/integration_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_pipeline-fee1766e93b6e218.rmeta: tests/integration_pipeline.rs Cargo.toml

tests/integration_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
