/root/repo/target/debug/deps/parallel_determinism-03e6c4f2d04b2a0e.d: crates/core/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-03e6c4f2d04b2a0e: crates/core/tests/parallel_determinism.rs

crates/core/tests/parallel_determinism.rs:
