/root/repo/target/debug/deps/kernels_golden-1dfb986706140682.d: tests/kernels_golden.rs Cargo.toml

/root/repo/target/debug/deps/libkernels_golden-1dfb986706140682.rmeta: tests/kernels_golden.rs Cargo.toml

tests/kernels_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
