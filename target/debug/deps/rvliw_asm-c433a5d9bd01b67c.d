/root/repo/target/debug/deps/rvliw_asm-c433a5d9bd01b67c.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/code.rs crates/asm/src/parse.rs crates/asm/src/program.rs crates/asm/src/sched.rs Cargo.toml

/root/repo/target/debug/deps/librvliw_asm-c433a5d9bd01b67c.rmeta: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/code.rs crates/asm/src/parse.rs crates/asm/src/program.rs crates/asm/src/sched.rs Cargo.toml

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/code.rs:
crates/asm/src/parse.rs:
crates/asm/src/program.rs:
crates/asm/src/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
