/root/repo/target/debug/deps/rvliw_isa-e1024fb190539316.d: crates/isa/src/lib.rs crates/isa/src/bundle.rs crates/isa/src/config.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs crates/isa/src/simd.rs

/root/repo/target/debug/deps/rvliw_isa-e1024fb190539316: crates/isa/src/lib.rs crates/isa/src/bundle.rs crates/isa/src/config.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs crates/isa/src/simd.rs

crates/isa/src/lib.rs:
crates/isa/src/bundle.rs:
crates/isa/src/config.rs:
crates/isa/src/encode.rs:
crates/isa/src/op.rs:
crates/isa/src/opcode.rs:
crates/isa/src/reg.rs:
crates/isa/src/simd.rs:
