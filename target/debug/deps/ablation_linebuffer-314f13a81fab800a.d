/root/repo/target/debug/deps/ablation_linebuffer-314f13a81fab800a.d: crates/bench/benches/ablation_linebuffer.rs Cargo.toml

/root/repo/target/debug/deps/libablation_linebuffer-314f13a81fab800a.rmeta: crates/bench/benches/ablation_linebuffer.rs Cargo.toml

crates/bench/benches/ablation_linebuffer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
