/root/repo/target/debug/deps/tables-5d26456f32c8ec61.d: crates/bench/src/bin/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-5d26456f32c8ec61.rmeta: crates/bench/src/bin/tables.rs Cargo.toml

crates/bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
