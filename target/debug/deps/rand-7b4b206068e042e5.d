/root/repo/target/debug/deps/rand-7b4b206068e042e5.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/chacha.rs vendor/rand/src/uniform.rs Cargo.toml

/root/repo/target/debug/deps/librand-7b4b206068e042e5.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/chacha.rs vendor/rand/src/uniform.rs Cargo.toml

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/chacha.rs:
vendor/rand/src/uniform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
