/root/repo/target/debug/deps/rvliw_bench-f532b4ae8a2f16cd.d: crates/bench/src/lib.rs crates/bench/src/paper.rs Cargo.toml

/root/repo/target/debug/deps/librvliw_bench-f532b4ae8a2f16cd.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
