/root/repo/target/debug/deps/proptest_isa-55d33448e71e1c02.d: tests/proptest_isa.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_isa-55d33448e71e1c02.rmeta: tests/proptest_isa.rs Cargo.toml

tests/proptest_isa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
