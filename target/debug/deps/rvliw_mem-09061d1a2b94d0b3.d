/root/repo/target/debug/deps/rvliw_mem-09061d1a2b94d0b3.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/prefetch.rs crates/mem/src/ram.rs crates/mem/src/stats.rs crates/mem/src/system.rs

/root/repo/target/debug/deps/librvliw_mem-09061d1a2b94d0b3.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/prefetch.rs crates/mem/src/ram.rs crates/mem/src/stats.rs crates/mem/src/system.rs

/root/repo/target/debug/deps/librvliw_mem-09061d1a2b94d0b3.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/prefetch.rs crates/mem/src/ram.rs crates/mem/src/stats.rs crates/mem/src/system.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/prefetch.rs:
crates/mem/src/ram.rs:
crates/mem/src/stats.rs:
crates/mem/src/system.rs:
