/root/repo/target/debug/deps/rvliw_mem-d2d0f1abf2832fd9.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/prefetch.rs crates/mem/src/ram.rs crates/mem/src/stats.rs crates/mem/src/system.rs

/root/repo/target/debug/deps/rvliw_mem-d2d0f1abf2832fd9: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/prefetch.rs crates/mem/src/ram.rs crates/mem/src/stats.rs crates/mem/src/system.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/prefetch.rs:
crates/mem/src/ram.rs:
crates/mem/src/stats.rs:
crates/mem/src/system.rs:
