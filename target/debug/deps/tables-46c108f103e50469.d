/root/repo/target/debug/deps/tables-46c108f103e50469.d: crates/bench/src/bin/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-46c108f103e50469.rmeta: crates/bench/src/bin/tables.rs Cargo.toml

crates/bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
