/root/repo/target/debug/deps/future_work_dct-f967d1388c3ae820.d: tests/future_work_dct.rs

/root/repo/target/debug/deps/future_work_dct-f967d1388c3ae820: tests/future_work_dct.rs

tests/future_work_dct.rs:
