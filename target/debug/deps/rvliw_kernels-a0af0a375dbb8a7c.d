/root/repo/target/debug/deps/rvliw_kernels-a0af0a375dbb8a7c.d: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs Cargo.toml

/root/repo/target/debug/deps/librvliw_kernels-a0af0a375dbb8a7c.rmeta: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/dct.rs:
crates/kernels/src/driver.rs:
crates/kernels/src/getsad.rs:
crates/kernels/src/mc.rs:
crates/kernels/src/regs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
