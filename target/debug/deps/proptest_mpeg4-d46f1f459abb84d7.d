/root/repo/target/debug/deps/proptest_mpeg4-d46f1f459abb84d7.d: tests/proptest_mpeg4.rs

/root/repo/target/debug/deps/proptest_mpeg4-d46f1f459abb84d7: tests/proptest_mpeg4.rs

tests/proptest_mpeg4.rs:
