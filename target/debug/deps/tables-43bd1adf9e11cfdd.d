/root/repo/target/debug/deps/tables-43bd1adf9e11cfdd.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-43bd1adf9e11cfdd: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
