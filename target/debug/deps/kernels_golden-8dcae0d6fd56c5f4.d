/root/repo/target/debug/deps/kernels_golden-8dcae0d6fd56c5f4.d: tests/kernels_golden.rs

/root/repo/target/debug/deps/kernels_golden-8dcae0d6fd56c5f4: tests/kernels_golden.rs

tests/kernels_golden.rs:
