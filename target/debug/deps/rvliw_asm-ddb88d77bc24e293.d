/root/repo/target/debug/deps/rvliw_asm-ddb88d77bc24e293.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/code.rs crates/asm/src/parse.rs crates/asm/src/program.rs crates/asm/src/sched.rs

/root/repo/target/debug/deps/librvliw_asm-ddb88d77bc24e293.rlib: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/code.rs crates/asm/src/parse.rs crates/asm/src/program.rs crates/asm/src/sched.rs

/root/repo/target/debug/deps/librvliw_asm-ddb88d77bc24e293.rmeta: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/code.rs crates/asm/src/parse.rs crates/asm/src/program.rs crates/asm/src/sched.rs

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/code.rs:
crates/asm/src/parse.rs:
crates/asm/src/program.rs:
crates/asm/src/sched.rs:
