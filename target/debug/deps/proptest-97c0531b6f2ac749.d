/root/repo/target/debug/deps/proptest-97c0531b6f2ac749.d: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-97c0531b6f2ac749: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/array.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
