/root/repo/target/debug/deps/reproduction-a1eeec4d9711f6ea.d: tests/reproduction.rs Cargo.toml

/root/repo/target/debug/deps/libreproduction-a1eeec4d9711f6ea.rmeta: tests/reproduction.rs Cargo.toml

tests/reproduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
