/root/repo/target/debug/deps/proptest_rfu-94bacdcd20bcebf9.d: tests/proptest_rfu.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_rfu-94bacdcd20bcebf9.rmeta: tests/proptest_rfu.rs Cargo.toml

tests/proptest_rfu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
