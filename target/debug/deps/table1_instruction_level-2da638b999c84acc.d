/root/repo/target/debug/deps/table1_instruction_level-2da638b999c84acc.d: crates/bench/benches/table1_instruction_level.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_instruction_level-2da638b999c84acc.rmeta: crates/bench/benches/table1_instruction_level.rs Cargo.toml

crates/bench/benches/table1_instruction_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
