/root/repo/target/debug/deps/alloc_free-ec252491ddfd0302.d: crates/sim/tests/alloc_free.rs

/root/repo/target/debug/deps/alloc_free-ec252491ddfd0302: crates/sim/tests/alloc_free.rs

crates/sim/tests/alloc_free.rs:
