/root/repo/target/debug/deps/proptest_rfu-9e414dd47f6a2015.d: tests/proptest_rfu.rs

/root/repo/target/debug/deps/proptest_rfu-9e414dd47f6a2015: tests/proptest_rfu.rs

tests/proptest_rfu.rs:
