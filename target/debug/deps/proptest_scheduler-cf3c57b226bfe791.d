/root/repo/target/debug/deps/proptest_scheduler-cf3c57b226bfe791.d: tests/proptest_scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_scheduler-cf3c57b226bfe791.rmeta: tests/proptest_scheduler.rs Cargo.toml

tests/proptest_scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
