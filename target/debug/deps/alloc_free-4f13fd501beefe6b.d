/root/repo/target/debug/deps/alloc_free-4f13fd501beefe6b.d: crates/sim/tests/alloc_free.rs Cargo.toml

/root/repo/target/debug/deps/liballoc_free-4f13fd501beefe6b.rmeta: crates/sim/tests/alloc_free.rs Cargo.toml

crates/sim/tests/alloc_free.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
