/root/repo/target/debug/deps/rvliw-2c1f18892a80d0e1.d: src/bin/rvliw.rs

/root/repo/target/debug/deps/rvliw-2c1f18892a80d0e1: src/bin/rvliw.rs

src/bin/rvliw.rs:
