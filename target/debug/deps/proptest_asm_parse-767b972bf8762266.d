/root/repo/target/debug/deps/proptest_asm_parse-767b972bf8762266.d: tests/proptest_asm_parse.rs

/root/repo/target/debug/deps/proptest_asm_parse-767b972bf8762266: tests/proptest_asm_parse.rs

tests/proptest_asm_parse.rs:
