/root/repo/target/debug/deps/rvliw_sim-031c66bbb4366990.d: crates/sim/src/lib.rs crates/sim/src/decode.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/librvliw_sim-031c66bbb4366990.rlib: crates/sim/src/lib.rs crates/sim/src/decode.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/librvliw_sim-031c66bbb4366990.rmeta: crates/sim/src/lib.rs crates/sim/src/decode.rs crates/sim/src/exec.rs crates/sim/src/machine.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/decode.rs:
crates/sim/src/exec.rs:
crates/sim/src/machine.rs:
crates/sim/src/stats.rs:
