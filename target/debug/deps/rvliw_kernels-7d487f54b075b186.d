/root/repo/target/debug/deps/rvliw_kernels-7d487f54b075b186.d: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs

/root/repo/target/debug/deps/rvliw_kernels-7d487f54b075b186: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs

crates/kernels/src/lib.rs:
crates/kernels/src/dct.rs:
crates/kernels/src/driver.rs:
crates/kernels/src/getsad.rs:
crates/kernels/src/mc.rs:
crates/kernels/src/regs.rs:
