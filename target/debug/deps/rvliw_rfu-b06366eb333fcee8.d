/root/repo/target/debug/deps/rvliw_rfu-b06366eb333fcee8.d: crates/rfu/src/lib.rs crates/rfu/src/config.rs crates/rfu/src/dct.rs crates/rfu/src/line_buffer.rs crates/rfu/src/meloop.rs crates/rfu/src/reconfig.rs crates/rfu/src/stats.rs crates/rfu/src/unit.rs

/root/repo/target/debug/deps/librvliw_rfu-b06366eb333fcee8.rlib: crates/rfu/src/lib.rs crates/rfu/src/config.rs crates/rfu/src/dct.rs crates/rfu/src/line_buffer.rs crates/rfu/src/meloop.rs crates/rfu/src/reconfig.rs crates/rfu/src/stats.rs crates/rfu/src/unit.rs

/root/repo/target/debug/deps/librvliw_rfu-b06366eb333fcee8.rmeta: crates/rfu/src/lib.rs crates/rfu/src/config.rs crates/rfu/src/dct.rs crates/rfu/src/line_buffer.rs crates/rfu/src/meloop.rs crates/rfu/src/reconfig.rs crates/rfu/src/stats.rs crates/rfu/src/unit.rs

crates/rfu/src/lib.rs:
crates/rfu/src/config.rs:
crates/rfu/src/dct.rs:
crates/rfu/src/line_buffer.rs:
crates/rfu/src/meloop.rs:
crates/rfu/src/reconfig.rs:
crates/rfu/src/stats.rs:
crates/rfu/src/unit.rs:
