/root/repo/target/debug/deps/rvliw_core-5cb201dfcdd9569b.d: crates/core/src/lib.rs crates/core/src/app_model.rs crates/core/src/arch.rs crates/core/src/breakdown.rs crates/core/src/runner.rs crates/core/src/scenario.rs crates/core/src/tables.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/rvliw_core-5cb201dfcdd9569b: crates/core/src/lib.rs crates/core/src/app_model.rs crates/core/src/arch.rs crates/core/src/breakdown.rs crates/core/src/runner.rs crates/core/src/scenario.rs crates/core/src/tables.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/app_model.rs:
crates/core/src/arch.rs:
crates/core/src/breakdown.rs:
crates/core/src/runner.rs:
crates/core/src/scenario.rs:
crates/core/src/tables.rs:
crates/core/src/workload.rs:
