/root/repo/target/debug/deps/rvliw_core-045e95cd06817fe4.d: crates/core/src/lib.rs crates/core/src/app_model.rs crates/core/src/arch.rs crates/core/src/breakdown.rs crates/core/src/runner.rs crates/core/src/scenario.rs crates/core/src/tables.rs crates/core/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/librvliw_core-045e95cd06817fe4.rmeta: crates/core/src/lib.rs crates/core/src/app_model.rs crates/core/src/arch.rs crates/core/src/breakdown.rs crates/core/src/runner.rs crates/core/src/scenario.rs crates/core/src/tables.rs crates/core/src/workload.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/app_model.rs:
crates/core/src/arch.rs:
crates/core/src/breakdown.rs:
crates/core/src/runner.rs:
crates/core/src/scenario.rs:
crates/core/src/tables.rs:
crates/core/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
