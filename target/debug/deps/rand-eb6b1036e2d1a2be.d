/root/repo/target/debug/deps/rand-eb6b1036e2d1a2be.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/chacha.rs vendor/rand/src/uniform.rs

/root/repo/target/debug/deps/rand-eb6b1036e2d1a2be: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/chacha.rs vendor/rand/src/uniform.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/chacha.rs:
vendor/rand/src/uniform.rs:
