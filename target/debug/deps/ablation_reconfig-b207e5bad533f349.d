/root/repo/target/debug/deps/ablation_reconfig-b207e5bad533f349.d: crates/bench/benches/ablation_reconfig.rs Cargo.toml

/root/repo/target/debug/deps/libablation_reconfig-b207e5bad533f349.rmeta: crates/bench/benches/ablation_reconfig.rs Cargo.toml

crates/bench/benches/ablation_reconfig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
