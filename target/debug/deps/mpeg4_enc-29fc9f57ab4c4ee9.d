/root/repo/target/debug/deps/mpeg4_enc-29fc9f57ab4c4ee9.d: crates/mpeg4/src/lib.rs crates/mpeg4/src/bitstream.rs crates/mpeg4/src/dct.rs crates/mpeg4/src/decoder.rs crates/mpeg4/src/encoder.rs crates/mpeg4/src/footprint.rs crates/mpeg4/src/huffman.rs crates/mpeg4/src/mc.rs crates/mpeg4/src/me.rs crates/mpeg4/src/psnr.rs crates/mpeg4/src/quant.rs crates/mpeg4/src/rlc.rs crates/mpeg4/src/sad.rs crates/mpeg4/src/synth.rs crates/mpeg4/src/types.rs crates/mpeg4/src/zigzag.rs

/root/repo/target/debug/deps/libmpeg4_enc-29fc9f57ab4c4ee9.rlib: crates/mpeg4/src/lib.rs crates/mpeg4/src/bitstream.rs crates/mpeg4/src/dct.rs crates/mpeg4/src/decoder.rs crates/mpeg4/src/encoder.rs crates/mpeg4/src/footprint.rs crates/mpeg4/src/huffman.rs crates/mpeg4/src/mc.rs crates/mpeg4/src/me.rs crates/mpeg4/src/psnr.rs crates/mpeg4/src/quant.rs crates/mpeg4/src/rlc.rs crates/mpeg4/src/sad.rs crates/mpeg4/src/synth.rs crates/mpeg4/src/types.rs crates/mpeg4/src/zigzag.rs

/root/repo/target/debug/deps/libmpeg4_enc-29fc9f57ab4c4ee9.rmeta: crates/mpeg4/src/lib.rs crates/mpeg4/src/bitstream.rs crates/mpeg4/src/dct.rs crates/mpeg4/src/decoder.rs crates/mpeg4/src/encoder.rs crates/mpeg4/src/footprint.rs crates/mpeg4/src/huffman.rs crates/mpeg4/src/mc.rs crates/mpeg4/src/me.rs crates/mpeg4/src/psnr.rs crates/mpeg4/src/quant.rs crates/mpeg4/src/rlc.rs crates/mpeg4/src/sad.rs crates/mpeg4/src/synth.rs crates/mpeg4/src/types.rs crates/mpeg4/src/zigzag.rs

crates/mpeg4/src/lib.rs:
crates/mpeg4/src/bitstream.rs:
crates/mpeg4/src/dct.rs:
crates/mpeg4/src/decoder.rs:
crates/mpeg4/src/encoder.rs:
crates/mpeg4/src/footprint.rs:
crates/mpeg4/src/huffman.rs:
crates/mpeg4/src/mc.rs:
crates/mpeg4/src/me.rs:
crates/mpeg4/src/psnr.rs:
crates/mpeg4/src/quant.rs:
crates/mpeg4/src/rlc.rs:
crates/mpeg4/src/sad.rs:
crates/mpeg4/src/synth.rs:
crates/mpeg4/src/types.rs:
crates/mpeg4/src/zigzag.rs:
