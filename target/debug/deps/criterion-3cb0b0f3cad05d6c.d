/root/repo/target/debug/deps/criterion-3cb0b0f3cad05d6c.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-3cb0b0f3cad05d6c.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
