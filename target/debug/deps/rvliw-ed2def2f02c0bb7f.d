/root/repo/target/debug/deps/rvliw-ed2def2f02c0bb7f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librvliw-ed2def2f02c0bb7f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
