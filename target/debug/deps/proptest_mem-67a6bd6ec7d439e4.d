/root/repo/target/debug/deps/proptest_mem-67a6bd6ec7d439e4.d: tests/proptest_mem.rs

/root/repo/target/debug/deps/proptest_mem-67a6bd6ec7d439e4: tests/proptest_mem.rs

tests/proptest_mem.rs:
