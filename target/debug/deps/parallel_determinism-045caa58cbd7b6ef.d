/root/repo/target/debug/deps/parallel_determinism-045caa58cbd7b6ef.d: crates/core/tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-045caa58cbd7b6ef.rmeta: crates/core/tests/parallel_determinism.rs Cargo.toml

crates/core/tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
