/root/repo/target/debug/deps/rvliw_kernels-3e0149a4a058c318.d: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs Cargo.toml

/root/repo/target/debug/deps/librvliw_kernels-3e0149a4a058c318.rmeta: crates/kernels/src/lib.rs crates/kernels/src/dct.rs crates/kernels/src/driver.rs crates/kernels/src/getsad.rs crates/kernels/src/mc.rs crates/kernels/src/regs.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/dct.rs:
crates/kernels/src/driver.rs:
crates/kernels/src/getsad.rs:
crates/kernels/src/mc.rs:
crates/kernels/src/regs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
