/root/repo/target/debug/deps/rvliw_rfu-81d288ed7546d0d8.d: crates/rfu/src/lib.rs crates/rfu/src/config.rs crates/rfu/src/dct.rs crates/rfu/src/line_buffer.rs crates/rfu/src/meloop.rs crates/rfu/src/reconfig.rs crates/rfu/src/stats.rs crates/rfu/src/unit.rs Cargo.toml

/root/repo/target/debug/deps/librvliw_rfu-81d288ed7546d0d8.rmeta: crates/rfu/src/lib.rs crates/rfu/src/config.rs crates/rfu/src/dct.rs crates/rfu/src/line_buffer.rs crates/rfu/src/meloop.rs crates/rfu/src/reconfig.rs crates/rfu/src/stats.rs crates/rfu/src/unit.rs Cargo.toml

crates/rfu/src/lib.rs:
crates/rfu/src/config.rs:
crates/rfu/src/dct.rs:
crates/rfu/src/line_buffer.rs:
crates/rfu/src/meloop.rs:
crates/rfu/src/reconfig.rs:
crates/rfu/src/stats.rs:
crates/rfu/src/unit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
