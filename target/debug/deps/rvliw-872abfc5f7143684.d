/root/repo/target/debug/deps/rvliw-872abfc5f7143684.d: src/lib.rs

/root/repo/target/debug/deps/librvliw-872abfc5f7143684.rlib: src/lib.rs

/root/repo/target/debug/deps/librvliw-872abfc5f7143684.rmeta: src/lib.rs

src/lib.rs:
