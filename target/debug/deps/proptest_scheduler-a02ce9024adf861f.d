/root/repo/target/debug/deps/proptest_scheduler-a02ce9024adf861f.d: tests/proptest_scheduler.rs

/root/repo/target/debug/deps/proptest_scheduler-a02ce9024adf861f: tests/proptest_scheduler.rs

tests/proptest_scheduler.rs:
