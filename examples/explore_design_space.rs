//! Architecture exploration: the paper's core methodology — sweep the RFU
//! design space on one platform and compare quantitatively.
//!
//! Builds an [`ExperimentSpec`] programmatically (the same declarative
//! layer the checked-in `specs/*.json` files and `rvliw sweep` use),
//! sweeping bandwidth × technology scaling × line-buffer scheme, and
//! prints the result matrix against the ORIG software baseline — including
//! points the paper did not publish (β = 2, 3).
//!
//! ```text
//! cargo run --release --example explore_design_space
//! ```

use rvliw::exp::{ExperimentSpec, SpecError, Sweep, SweepAxes, Workload};
use rvliw::kernels::Variant;
use rvliw::rfu::RfuBandwidth;

fn main() -> Result<(), SpecError> {
    let betas = vec![1u64, 2, 3, 5];
    let spec = ExperimentSpec::new("explore-design-space")
        .with_baseline("Orig")
        .sweep(SweepAxes::instruction(vec![Variant::Orig]))
        .sweep(SweepAxes::loop_grid(
            RfuBandwidth::all().to_vec(),
            betas.clone(),
        ))
        .sweep(SweepAxes::loop_two_lb(betas));
    // The spec is serializable — `println!("{}", spec.to_json_string())`
    // yields a file `rvliw sweep` runs directly.
    let sweep = Sweep::expand(spec)?;

    println!("encoding the workload …");
    let workload = Workload::qcif_frames(3);
    println!(
        "replaying {} GetSad calls across {} design points …\n",
        workload.num_calls(),
        sweep.scenarios().len()
    );
    let outcome = sweep.run(&workload, rvliw::exp::default_threads(), |_| {});
    print!("{outcome}");

    println!(
        "\nreading the matrix: bandwidth buys the most at β = 1; as the RFU\n\
         fabric slows (β→5) the compute stages dominate and the options\n\
         converge — aggressive pipelining (the fixed 17-row load stage)\n\
         is what keeps the loop-level mapping ahead of the ISA extensions."
    );
    Ok(())
}
