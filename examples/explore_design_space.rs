//! Architecture exploration: the paper's core methodology — sweep the RFU
//! design space on one platform and compare quantitatively.
//!
//! Sweeps bandwidth × technology scaling × line-buffer scheme and prints a
//! speedup matrix against the ORIG software baseline, including points the
//! paper did not publish (β = 2, 3).
//!
//! ```text
//! cargo run --release --example explore_design_space
//! ```

use rvliw::exp::{run_me, Scenario, Workload};
use rvliw::rfu::RfuBandwidth;

fn main() -> Result<(), rvliw::exp::ScenarioError> {
    println!("encoding the workload …");
    let workload = Workload::qcif_frames(3);
    println!(
        "replaying {} GetSad calls per design point …\n",
        workload.num_calls()
    );

    let orig = run_me(&Scenario::orig(), &workload)?;
    println!(
        "ORIG baseline: {} cycles ({} calls)\n",
        orig.me_cycles, orig.calls
    );

    let betas = [1u64, 2, 3, 5];
    print!("{:>14} |", "speedup");
    for beta in betas {
        print!("  b={beta}  ");
    }
    println!("\n{:-<14}-+{:-<28}", "", "");
    for bw in RfuBandwidth::all() {
        print!("{:>14} |", format!("loop {}", bw.label()));
        for beta in betas {
            let r = run_me(&Scenario::loop_level(bw, beta), &workload)?;
            print!(" {:>5.2} ", r.speedup_vs(&orig));
        }
        println!();
    }
    print!("{:>14} |", "two line bufs");
    for beta in betas {
        let r = run_me(&Scenario::loop_two_lb(beta), &workload)?;
        print!(" {:>5.2} ", r.speedup_vs(&orig));
    }
    println!();

    println!(
        "\nreading the matrix: bandwidth buys the most at β = 1; as the RFU\n\
         fabric slows (β→5) the compute stages dominate and the options\n\
         converge — aggressive pipelining (the fixed 17-row load stage)\n\
         is what keeps the loop-level mapping ahead of the ISA extensions."
    );
    Ok(())
}
