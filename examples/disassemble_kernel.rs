//! Prints the scheduled VLIW code of a `GetSad` kernel variant — what the
//! list scheduler produced for the 4-issue ST200 datapath.
//!
//! ```text
//! cargo run --example disassemble_kernel [-- orig|a1|a2|a3]
//! ```

use rvliw::isa::MachineConfig;
use rvliw::kernels::{build_getsad, Variant};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "orig".into());
    let variant = match which.as_str() {
        "a1" => Variant::A1,
        "a2" => Variant::A2,
        "a3" => Variant::A3,
        _ => Variant::Orig,
    };
    let code = build_getsad(variant, &MachineConfig::st200());
    println!("{}", code.disassemble());
    let ops = code.num_ops();
    let bundles = code.bundles().len();
    println!(
        "; {} operations in {} bundles (static ILP {:.2} ops/cycle), {} bytes of code",
        ops,
        bundles,
        ops as f64 / bundles as f64,
        code.size_words() * 4
    );
}
