//! Figure 2 of the paper: the packed-word data set of a predictor
//! macroblock, for every alignment and interpolation kind.
//!
//! Each 8-bit pixel is accessed through the 32-bit word it is packed into,
//! so a 17-pixel row at alignment 3 needs five words, and the diagonal
//! interpolation adds a 17th row — the footprint the RFU's custom prefetch
//! instruction covers with one cache-line request per row.
//!
//! ```text
//! cargo run --example alignment_footprint [-- <alignment 0-3>]
//! ```

use rvliw::mpeg4::footprint;
use rvliw::mpeg4::sad::InterpKind;

fn main() {
    let align: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);

    // The paper's Figure 2 case first: alignment 3 with diagonal
    // interpolation.
    println!("{}", footprint::render(align, InterpKind::Diag));

    // The other interpolation kinds for comparison.
    for kind in [InterpKind::None, InterpKind::H, InterpKind::V] {
        println!("{}", footprint::render(align, kind));
    }

    // How the footprint translates to cache lines: per row, one 32-byte
    // line plus a crossing when the 20-byte window straddles a boundary.
    println!("cache-line view (32 B lines): a row footprint of 20 bytes");
    for offset_in_line in [0u32, 8, 16, 24] {
        let crosses = offset_in_line + 20 > 32;
        println!(
            "  row start at line offset {offset_in_line:>2} -> {}",
            if crosses {
                "2 line requests (crossing)"
            } else {
                "1 line request"
            }
        );
    }
}
