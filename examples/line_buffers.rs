//! Figures 3 and 4 of the paper: the RFU's line buffers in action.
//!
//! Issues the custom macroblock prefetches against a live memory system and
//! prints the resulting Line Buffer A (reference macroblock, `Done` flags)
//! and Line Buffer B (candidate lines, double-buffered banks) state.
//!
//! ```text
//! cargo run --example line_buffers
//! ```

use rvliw::mem::{MemConfig, MemorySystem};
use rvliw::rfu::{cfgs, MeLoopCfg, Rfu, RfuBandwidth};

fn main() {
    let stride = 176u32;
    let mut mem = MemorySystem::new(MemConfig::st200_loop_level());
    let frame = mem.ram.alloc(stride * 160, 32);
    for i in 0..stride * 160 {
        mem.ram.store8(frame + i, ((i * 31) % 251) as u8);
    }

    let me = MeLoopCfg::new(RfuBandwidth::B1x32, 1, stride).with_line_buffer_b();
    let mut rfu = Rfu::with_case_study_configs(me);

    // Gather a reference macroblock into Line Buffer A at cycle 0.
    let ref_addr = frame + 32 * stride + 48;
    rfu.pref(cfgs::PREF_REF, ref_addr, &mut mem, 0).unwrap();

    println!("== Figure 3: Line Buffer A right after the gather prefetch ==");
    println!("(rows arrive as their cache-line fills complete)\n");
    println!("{}", rfu.lb_a);
    let done_now = (0..16).filter(|&r| rfu.lb_a.row_done(r, 0)).count();
    let done_later = (0..16).filter(|&r| rfu.lb_a.row_done(r, 10_000)).count();
    println!("rows Done at cycle 0: {done_now}; after the fills complete: {done_later}\n");

    // Prefetch two consecutive candidate macroblocks into Line Buffer B —
    // the double-buffering scheme with full-associative dedup.
    let cand1 = frame + 40 * stride + 57;
    let cand2 = frame + 40 * stride + 59; // overlaps cand1 heavily
    rfu.pref(cfgs::PREF_CAND_LBB, cand1, &mut mem, 100).unwrap();
    rfu.pref(cfgs::PREF_CAND_LBB, cand2, &mut mem, 400).unwrap();

    println!("== Figure 4: Line Buffer B after two candidate prefetches ==");
    println!("(the second candidate overlaps the first; shared lines are deduped)\n");
    println!("{}", rfu.lb_b);
    println!(
        "lookups deduped against pending/resident lines: {}",
        rfu.lb_b.dedup
    );
    println!(
        "prefetch-buffer state: {} in flight, {} issued, {} redundant",
        mem.pfq.len(),
        mem.pfq.issued,
        mem.pfq.redundant
    );
}
