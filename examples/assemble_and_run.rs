//! The toolchain end to end on hand-written assembly: parse a textual
//! program, schedule it for the 4-issue ST200, print the bundled code and
//! run it with an execution trace.
//!
//! ```text
//! cargo run --example assemble_and_run
//! ```

use rvliw::asm::{parse_program, schedule_st200};
use rvliw::isa::Gpr;
use rvliw::sim::Machine;

const SOURCE: &str = r"
; sum of squares 1..=5, computed the VLIW way:
; the multiplies (latency 3, 2 units) overlap with the loop control.
    mov $r1 = 5          ; i
    mov $r2 = 0          ; acc
loop:
    mul $r3 = $r1, $r1
    add $r2 = $r2, $r3
    sub $r1 = $r1, 1
    cmpne $b0 = $r1, 0
    br $b0 -> loop
    mov $r16 = $r2
    halt
";

fn main() {
    let program = parse_program("sum_of_squares", SOURCE).expect("parses");
    program.validate().expect("well-formed");
    println!(
        "parsed {} operations in {} blocks\n",
        program.num_ops(),
        program.blocks.len()
    );

    let code = schedule_st200(&program).expect("schedules");
    println!("{}", code.disassemble());

    let mut m = Machine::st200();
    println!("execution trace (cycle, pc, first op of the bundle):");
    m.run_traced(&code, |cycle, pc, bundle| {
        let first = bundle
            .ops()
            .first()
            .map_or_else(|| "nop".to_owned(), ToString::to_string);
        println!("  {cycle:>4}  {pc:>3}  {first}");
    })
    .expect("runs");

    let result = m.gpr(Gpr::new(16));
    println!("\nresult: $r16 = {result} (expected 55)");
    assert_eq!(result, 55);
    println!(
        "cycles: {} — note the multiplies hiding under the loop overhead",
        m.cycle()
    );
}
