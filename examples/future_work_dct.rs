//! The paper's future work, made runnable: extend the RFU analysis to
//! another part of the application — the texture pipeline's 8×8 DCT.
//!
//! Compares the software VLIW DCT kernel (bit-true fixed-point, 16×32
//! multiplier bound) against a long-latency RFU DCT instruction, for
//! β = 1 and β = 5, and folds the result into the application model.
//!
//! ```text
//! cargo run --release --example future_work_dct
//! ```

use rvliw::exp::SimSession;
use rvliw::isa::MachineConfig;
use rvliw::kernels::dct::{build_dct, DCT_ARG_DST, DCT_ARG_SCRATCH, DCT_ARG_SRC};
use rvliw::mpeg4::dct::fdct_fixed;
use rvliw::rfu::{cfgs, DctLoopCfg, MeLoopCfg, RfuBandwidth};

fn main() {
    // A representative residual block.
    let mut block = [0i32; 64];
    for (i, v) in block.iter_mut().enumerate() {
        *v = ((i as i32 * 29) % 200) - 100;
    }
    let golden = fdct_fixed(&block);

    // --- software kernel on the VLIW ------------------------------------
    let code = build_dct(&MachineConfig::st200());
    let mut m = SimSession::st200().build();
    let src = m.mem.ram.alloc(128, 32);
    let dst = m.mem.ram.alloc(128, 32);
    let scratch = m.mem.ram.alloc(128, 32);
    for (i, &v) in block.iter().enumerate() {
        m.mem.ram.store16(src + i as u32 * 2, v as u16);
    }
    let mut sw_cycles = 0;
    for pass in 0..2 {
        m.set_gpr(DCT_ARG_SRC, src);
        m.set_gpr(DCT_ARG_DST, dst);
        m.set_gpr(DCT_ARG_SCRATCH, scratch);
        let before = m.cycle();
        m.run(&code).unwrap();
        if pass == 1 {
            sw_cycles = m.cycle() - before;
        }
    }
    let mut sw_out = [0i32; 64];
    for (i, o) in sw_out.iter_mut().enumerate() {
        *o = m.mem.ram.load16(dst + i as u32 * 2) as i16 as i32;
    }
    assert_eq!(sw_out, golden, "software kernel bit-true");
    println!("8x8 forward DCT on the 4-issue VLIW (2 x 16x32 MUL): {sw_cycles} cycles (warm)");

    // --- RFU DCT instruction ---------------------------------------------
    for beta in [1u64, 5] {
        let mut m = SimSession::st200_loop_level()
            .me_loop(MeLoopCfg::new(RfuBandwidth::B1x32, beta, 176))
            .build();
        // The DCT configuration is an extension beyond the case-study set;
        // define it on the built machine's RFU.
        m.rfu.define(
            cfgs::DCT_LOOP,
            rvliw::rfu::RfuConfig::DctLoop(DctLoopCfg::new(beta)),
        );
        let src = m.mem.ram.alloc(128, 32);
        let dst = m.mem.ram.alloc(128, 32);
        for (i, &v) in block.iter().enumerate() {
            m.mem.ram.store16(src + i as u32 * 2, v as u16);
        }
        // Warm the lines, then measure the instruction.
        let _ = m
            .rfu
            .exec(cfgs::DCT_LOOP, &[src, dst], &mut m.mem, 0)
            .unwrap();
        let out = m
            .rfu
            .exec(cfgs::DCT_LOOP, &[src, dst], &mut m.mem, 10_000)
            .unwrap();
        let mut rfu_out = [0i32; 64];
        for (i, o) in rfu_out.iter_mut().enumerate() {
            *o = m.mem.ram.load16(dst + i as u32 * 2) as i16 as i32;
        }
        assert_eq!(rfu_out, golden, "RFU datapath bit-true");
        println!(
            "RFU DCT instruction (b={beta}): {} busy + {} stall cycles  ({:.1}x vs software)",
            out.busy,
            out.stall,
            sw_cycles as f64 / (out.busy + out.stall) as f64
        );
    }

    println!(
        "\nlike the SAD loop, the DCT offload is kernel-level reconfigurable\n\
         computing: the multiplier-bound software loop collapses into a\n\
         pipelined spatial datapath, and β scaling only touches the compute\n\
         stages. This is the paper's proposed next step, quantified."
    );
}
