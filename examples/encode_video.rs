//! The MPEG-4 encoder substrate on its own: encode a synthetic sequence,
//! report rate/distortion per frame and the motion statistics that drive
//! the case study.
//!
//! ```text
//! cargo run --release --example encode_video [-- <frames>]
//! ```

use rvliw::mpeg4::me::{MotionSearch, SearchAlgorithm};
use rvliw::mpeg4::{Encoder, EncoderConfig, SyntheticSequence};

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    println!("generating {frames} synthetic QCIF frames (the Foreman substitute) …");
    let seq = SyntheticSequence::new(176, 144, frames, 0x4652_4d4e).generate();

    let encoder = Encoder::new(EncoderConfig {
        q: 10,
        search: MotionSearch {
            algorithm: SearchAlgorithm::Diamond,
            half_sample: true,
            approx: rvliw::mpeg4::ApproxSad::Exact,
        },
    });
    let report = encoder.encode(&seq);

    println!("\n frame  type      bits   PSNR-Y    GetSad calls");
    for (t, f) in report.frames.iter().enumerate() {
        let calls: usize = f.motion.iter().map(|m| m.calls.len()).sum();
        println!(
            "  {t:>3}    {:?}  {:>8}   {:>6.2}   {calls:>8}",
            f.frame_type, f.bits, f.psnr_y
        );
    }

    let (n, h, v, d) = report.interp_shares();
    let kbps = report.total_bits as f64 * 25.0 / (frames as f64 * 1000.0);
    println!(
        "\ntotals: {} bits ({kbps:.0} kbit/s at 25 fps), mean PSNR-Y {:.2} dB",
        report.total_bits,
        report.mean_psnr_y()
    );
    println!(
        "GetSad interpolation mix: none {:.1}%  H {:.1}%  V {:.1}%  diagonal {:.1}%",
        n * 100.0,
        h * 100.0,
        v * 100.0,
        d * 100.0
    );
    println!(
        "(the diagonal share is what makes the paper's instruction-level\n\
         scenarios matter: those calls are ~3x slower on the base ISA)"
    );
}
