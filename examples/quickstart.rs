//! Quickstart: the case study in one page.
//!
//! Builds a small synthetic workload, replays its motion-estimation trace
//! against the ORIG kernel, the A3 instruction-level RFU kernel and the
//! loop-level RFU instruction, and prints the speedups — the paper's
//! headline comparison on a laptop-sized input.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rvliw::exp::{arch, run_me, Scenario, Workload};
use rvliw::isa::MachineConfig;
use rvliw::mem::MemConfig;
use rvliw::rfu::RfuBandwidth;

fn main() -> Result<(), rvliw::exp::ScenarioError> {
    println!(
        "{}\n",
        arch::describe(&MachineConfig::st200(), &MemConfig::st200())
    );

    // A reduced workload (QCIF, 3 frames) keeps this example under a
    // second; the full experiments use 25 frames (see `rvliw-bench`).
    println!("encoding the workload on the host …");
    let workload = Workload::qcif_frames(3);
    println!(
        "  {} GetSad calls, {:.1}% diagonal interpolation\n",
        workload.num_calls(),
        workload.diag_share() * 100.0
    );

    println!("replaying the ME trace on the simulated machine …");
    let orig = run_me(&Scenario::orig(), &workload)?;
    println!(
        "  ORIG     : {:>9} cycles  (scalar diagonal interpolation)",
        orig.me_cycles
    );

    let a3 = run_me(&Scenario::a3(), &workload)?;
    println!(
        "  A3       : {:>9} cycles  ({:.2}x — 16-pixel RFUEXEC interpolation)",
        a3.me_cycles,
        a3.speedup_vs(&orig)
    );

    let lp = run_me(&Scenario::loop_level(RfuBandwidth::B1x32, 1), &workload)?;
    println!(
        "  loop 1x32: {:>9} cycles  ({:.2}x — whole kernel loop as one RFU instruction)",
        lp.me_cycles,
        lp.speedup_vs(&orig)
    );

    let lb = run_me(&Scenario::loop_two_lb(1), &workload)?;
    println!(
        "  loop +LBB: {:>9} cycles  ({:.2}x — plus double-buffered candidate line buffer)",
        lb.me_cycles,
        lb.speedup_vs(&orig)
    );

    println!(
        "\nthe paper's conclusion, reproduced: extending the ISA buys ~1.2-1.4x,\n\
         mapping the whole kernel loop to the RFU buys {:.1}-{:.1}x.",
        lp.speedup_vs(&orig),
        lb.speedup_vs(&orig)
    );
    Ok(())
}
